exception Compile_error of string * Ast.pos

let err pos fmt = Printf.ksprintf (fun m -> raise (Compile_error (m, pos))) fmt

(* ---- environments ---- *)

type var_kind = Local of int | Formal of int   (* frame / formal offset *)

type var_info = { vkind : var_kind; vty : Ast.cty }

type fenv = {
  globals : (string, Ast.cty) Hashtbl.t;
  functions : (string, Ast.cty * Ast.cty list) Hashtbl.t;
  mutable strings : (string * string) list;  (* label, contents *)
  mutable next_string : int;
}

type env = {
  f : fenv;
  mutable scopes : (string, var_info) Hashtbl.t list;
  mutable frame_top : int;
  mutable max_frame : int;
  mutable next_label : int;
  mutable out : Ir.Tree.stmt list;    (* reversed *)
  mutable loops : (string * string) list;  (* break, continue labels *)
  ret_ty : Ast.cty;
}

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop_scope env =
  match env.scopes with
  | [] -> ()
  | _ :: rest -> env.scopes <- rest

let lookup_var env name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
      match Hashtbl.find_opt s name with Some v -> Some v | None -> go rest)
  in
  go env.scopes

let define_local env pos name ty =
  (match env.scopes with
  | [] -> err pos "internal: no scope"
  | s :: _ ->
    if Hashtbl.mem s name then err pos "redefinition of %s" name;
    let align = Ast.ty_align ty in
    let sz = max 1 (Ast.ty_size ty) in
    env.frame_top <- (env.frame_top + align - 1) / align * align;
    Hashtbl.add s name { vkind = Local env.frame_top; vty = ty };
    env.frame_top <- env.frame_top + sz;
    env.max_frame <- max env.max_frame env.frame_top);
  match env.scopes with
  | s :: _ -> (Hashtbl.find s name).vkind
  | [] -> assert false

let fresh_temp env ty =
  let align = Ast.ty_align ty in
  env.frame_top <- (env.frame_top + align - 1) / align * align;
  let off = env.frame_top in
  env.frame_top <- env.frame_top + max 1 (Ast.ty_size ty);
  env.max_frame <- max env.max_frame env.frame_top;
  off

let fresh_label env =
  let n = env.next_label in
  env.next_label <- n + 1;
  Printf.sprintf "L%d" n

let emit env s = env.out <- s :: env.out

(* ---- type helpers ---- *)

let ir_ty pos = function
  | Ast.Tint -> Ir.Op.I
  | Ast.Tchar -> Ir.Op.C
  | Ast.Tshort -> Ir.Op.S
  | Ast.Tptr _ | Ast.Tarray _ -> Ir.Op.P
  | Ast.Tvoid -> err pos "void value used"

let decay = function Ast.Tarray (t, _) -> Ast.Tptr t | t -> t

(* widen a loaded value to I for arithmetic *)
let widen ty tree =
  match ty with
  | Ast.Tchar -> Ir.Tree.Cvt (Ir.Op.C, Ir.Op.I, tree)
  | Ast.Tshort -> Ir.Tree.Cvt (Ir.Op.S, Ir.Op.I, tree)
  | _ -> tree

let narrow ty tree =
  match ty with
  | Ast.Tchar -> Ir.Tree.Cvt (Ir.Op.I, Ir.Op.C, tree)
  | Ast.Tshort -> Ir.Tree.Cvt (Ir.Op.I, Ir.Op.S, tree)
  | _ -> tree

(* the "computation type": what a loaded value of cty looks like in trees *)
let comp_ty = function
  | Ast.Tptr _ | Ast.Tarray _ -> Ir.Op.P
  | _ -> Ir.Op.I

let addr_of_var pos (v : var_info) =
  ignore pos;
  match v.vkind with
  | Local off -> Ir.Tree.addrl off
  | Formal off -> Ir.Tree.addrf off

(* ---- constant folding ----

   All arithmetic folds with 32-bit two's-complement wrapping, matching
   the VM's runtime semantics — a folded constant must equal what the
   unfolded expression would compute. *)

let norm32 v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let fold_binop op a b =
  match op with
  | Ast.Badd -> Some (norm32 (a + b))
  | Ast.Bsub -> Some (norm32 (a - b))
  | Ast.Bmul -> Some (norm32 (a * b))
  | Ast.Bdiv -> if b = 0 then None else Some (norm32 (a / b))
  | Ast.Bmod -> if b = 0 then None else Some (norm32 (a mod b))
  | Ast.Bband -> Some (norm32 (a land b))
  | Ast.Bbor -> Some (norm32 (a lor b))
  | Ast.Bbxor -> Some (norm32 (a lxor b))
  | Ast.Bshl -> if b < 0 || b > 31 then None else Some (norm32 (a lsl b))
  | Ast.Bshr -> if b < 0 || b > 31 then None else Some (norm32 (a asr b))
  | Ast.Beq -> Some (if a = b then 1 else 0)
  | Ast.Bne -> Some (if a <> b then 1 else 0)
  | Ast.Blt -> Some (if a < b then 1 else 0)
  | Ast.Ble -> Some (if a <= b then 1 else 0)
  | Ast.Bgt -> Some (if a > b then 1 else 0)
  | Ast.Bge -> Some (if a >= b then 1 else 0)
  | Ast.Bland | Ast.Blor -> None

let rec const_eval (e : Ast.expr) : int option =
  match e.Ast.edesc with
  | Ast.Eint n -> Some (norm32 n)
  | Ast.Echar c -> Some (Char.code c)
  | Ast.Esizeof ty -> Some (Ast.ty_size ty)
  | Ast.Eunop (Ast.Uneg, a) -> Option.map (fun v -> norm32 (-v)) (const_eval a)
  | Ast.Eunop (Ast.Ubnot, a) -> Option.map (fun v -> norm32 (lnot v)) (const_eval a)
  | Ast.Eunop (Ast.Unot, a) ->
    Option.map (fun v -> if v = 0 then 1 else 0) (const_eval a)
  | Ast.Ebinop (op, a, b) -> (
    match (const_eval a, const_eval b) with
    | Some va, Some vb -> fold_binop op va vb
    | _ -> None)
  | _ -> None

(* ---- expression lowering ----

   [lower_rvalue] returns (cty, tree) where the tree computes the value
   (widened to I for sub-int scalars). [lower_lvalue] returns
   (cty, address tree). *)

let relop_of_binop = function
  | Ast.Beq -> Some Ir.Op.Eq
  | Ast.Bne -> Some Ir.Op.Ne
  | Ast.Blt -> Some Ir.Op.Lt
  | Ast.Ble -> Some Ir.Op.Le
  | Ast.Bgt -> Some Ir.Op.Gt
  | Ast.Bge -> Some Ir.Op.Ge
  | _ -> None

let ir_binop pos = function
  | Ast.Badd -> Ir.Op.Add
  | Ast.Bsub -> Ir.Op.Sub
  | Ast.Bmul -> Ir.Op.Mul
  | Ast.Bdiv -> Ir.Op.Div
  | Ast.Bmod -> Ir.Op.Mod
  | Ast.Bband -> Ir.Op.Band
  | Ast.Bbor -> Ir.Op.Bor
  | Ast.Bbxor -> Ir.Op.Bxor
  | Ast.Bshl -> Ir.Op.Lsh
  | Ast.Bshr -> Ir.Op.Rsh
  | _ -> err pos "internal: not an arithmetic operator"

let rec lower_rvalue env (e : Ast.expr) : Ast.cty * Ir.Tree.tree =
  let pos = e.Ast.epos in
  match e.Ast.edesc with
  (* large hex literals like 0xCC9E2D51 wrap to signed 32-bit, as C's
     conversion to int does on two's-complement targets *)
  | Ast.Eint n -> (Ast.Tint, Ir.Tree.cnst (norm32 n))
  | Ast.Echar c -> (Ast.Tchar, Ir.Tree.cnst (Char.code c))
  | Ast.Esizeof ty -> (Ast.Tint, Ir.Tree.cnst (Ast.ty_size ty))
  | Ast.Estring s ->
    let lbl = intern_string env s in
    (Ast.Tptr Ast.Tchar, Ir.Tree.Addrg lbl)
  | Ast.Evar name -> (
    match lookup_var env name with
    | Some v -> (
      match v.vty with
      | Ast.Tarray (elt, _) -> (Ast.Tptr elt, addr_of_var pos v)
      | ty -> (ty, widen ty (Ir.Tree.Indir (ir_ty pos ty, addr_of_var pos v))))
    | None -> (
      match Hashtbl.find_opt env.f.globals name with
      | Some (Ast.Tarray (elt, _)) -> (Ast.Tptr elt, Ir.Tree.Addrg name)
      | Some ty -> (ty, widen ty (Ir.Tree.Indir (ir_ty pos ty, Ir.Tree.Addrg name)))
      | None ->
        if Hashtbl.mem env.f.functions name then (Ast.Tptr Ast.Tvoid, Ir.Tree.Addrg name)
        else err pos "unknown identifier %s" name))
  | Ast.Eunop (Ast.Uneg, a) -> (
    match const_eval e with
    | Some v -> (Ast.Tint, Ir.Tree.cnst v)
    | None ->
      let ty, t = lower_int env a in
      ignore ty;
      (Ast.Tint, Ir.Tree.Neg (Ir.Op.I, t)))
  | Ast.Eunop (Ast.Ubnot, a) -> (
    match const_eval e with
    | Some v -> (Ast.Tint, Ir.Tree.cnst v)
    | None ->
      let _, t = lower_int env a in
      (Ast.Tint, Ir.Tree.Bcom (Ir.Op.I, t)))
  | Ast.Eunop (Ast.Unot, _) | Ast.Ebinop ((Ast.Bland | Ast.Blor), _, _) ->
    lower_bool_value env e
  | Ast.Ebinop (op, a, b) -> (
    match relop_of_binop op with
    | Some _ -> lower_bool_value env e
    | None -> (
      match const_eval e with
      | Some v -> (Ast.Tint, Ir.Tree.cnst v)
      | None -> lower_arith env pos op a b))
  | Ast.Eassign (lhs, rhs) ->
    (* value of assignment: store, then reload the stored location *)
    let ty, addr = lower_lvalue env lhs in
    let rty, rv = lower_rvalue env rhs in
    check_assignable pos ty rty;
    (* evaluate address once: it may be arbitrary; safe because our
       addresses are side-effect-free trees *)
    emit env (Ir.Tree.Sasgn (ir_ty pos ty, addr, narrow ty (coerce pos ty rty rv)));
    (ty, widen ty (Ir.Tree.Indir (ir_ty pos ty, addr)))
  | Ast.Ecall (fname, args) -> (
    let ret, addr = lower_call env pos fname args in
    match ret with
    | Ast.Tvoid -> err pos "void value of %s used" fname
    | _ ->
      (* spill to a temp so Call never nests inside bigger trees *)
      let call = Ir.Tree.Call (comp_ty ret, addr) in
      let off = fresh_temp env ret in
      emit env (Ir.Tree.Sasgn (ir_ty pos ret, Ir.Tree.addrl off, call));
      (ret, widen ret (Ir.Tree.Indir (ir_ty pos ret, Ir.Tree.addrl off))))
  | Ast.Eindex _ | Ast.Ederef _ ->
    let ty, addr = lower_lvalue env e in
    (match ty with
    | Ast.Tarray (elt, _) -> (Ast.Tptr elt, addr)
    | _ -> (ty, widen ty (Ir.Tree.Indir (ir_ty pos ty, addr))))
  | Ast.Eaddr lv ->
    let ty, addr = lower_lvalue env lv in
    (Ast.Tptr ty, addr)
  | Ast.Econd (c, a, b) ->
    let lfalse = fresh_label env and lend = fresh_label env in
    (* result type: from lowering [a]; both sides coerced to it *)
    let tmp_ty = Ast.Tint in
    let off = fresh_temp env tmp_ty in
    lower_cond env c ~target:lfalse ~jump_if:false;
    let tya, ta = lower_rvalue env a in
    emit env (Ir.Tree.Sasgn (comp_ty tya, Ir.Tree.addrl off, ta));
    emit env (Ir.Tree.Sjump lend);
    emit env (Ir.Tree.Slabel lfalse);
    let tyb, tb = lower_rvalue env b in
    emit env (Ir.Tree.Sasgn (comp_ty tyb, Ir.Tree.addrl off, tb));
    emit env (Ir.Tree.Slabel lend);
    let ty = if decay tya = decay tyb then decay tya else Ast.Tint in
    (ty, Ir.Tree.Indir (comp_ty ty, Ir.Tree.addrl off))

and lower_int env e =
  (* rvalue coerced to a 32-bit integer computation *)
  let ty, t = lower_rvalue env e in
  match decay ty with
  | Ast.Tint | Ast.Tchar | Ast.Tshort -> (ty, t)
  | Ast.Tptr _ -> (ty, Ir.Tree.Cvt (Ir.Op.P, Ir.Op.I, t))
  | _ -> err e.Ast.epos "integer expression expected"

and coerce pos target_ty source_ty tree =
  match (decay target_ty, decay source_ty) with
  | Ast.Tptr _, Ast.Tptr _ -> tree
  | Ast.Tptr _, (Ast.Tint | Ast.Tchar | Ast.Tshort) ->
    Ir.Tree.Cvt (Ir.Op.I, Ir.Op.P, tree)
  | (Ast.Tint | Ast.Tchar | Ast.Tshort), Ast.Tptr _ ->
    Ir.Tree.Cvt (Ir.Op.P, Ir.Op.I, tree)
  | (Ast.Tint | Ast.Tchar | Ast.Tshort), (Ast.Tint | Ast.Tchar | Ast.Tshort) ->
    tree
  | _ -> err pos "cannot convert %s to %s" (Ast.ty_to_string source_ty) (Ast.ty_to_string target_ty)

and check_assignable pos target source =
  match (decay target, decay source) with
  | t, s when Ast.equal_cty t s -> ()
  | (Ast.Tint | Ast.Tchar | Ast.Tshort), (Ast.Tint | Ast.Tchar | Ast.Tshort) -> ()
  | Ast.Tptr _, (Ast.Tint | Ast.Tchar | Ast.Tshort) -> ()  (* p = 0 *)
  | (Ast.Tint | Ast.Tchar | Ast.Tshort), Ast.Tptr _ -> ()
  | Ast.Tptr Ast.Tvoid, Ast.Tptr _ | Ast.Tptr _, Ast.Tptr Ast.Tvoid -> ()
  | _ ->
    err pos "incompatible assignment from %s to %s" (Ast.ty_to_string source)
      (Ast.ty_to_string target)

and lower_arith env pos op a b =
  let tya, ta = lower_rvalue env a in
  let tyb, tb = lower_rvalue env b in
  match (op, decay tya, decay tyb) with
  | Ast.Badd, Ast.Tptr elt, (Ast.Tint | Ast.Tchar | Ast.Tshort) ->
    let scaled = scale_index env elt tb in
    (Ast.Tptr elt, Ir.Tree.Binop (Ir.Op.P, Ir.Op.Add, ta, scaled))
  | Ast.Badd, (Ast.Tint | Ast.Tchar | Ast.Tshort), Ast.Tptr elt ->
    let scaled = scale_index env elt ta in
    (Ast.Tptr elt, Ir.Tree.Binop (Ir.Op.P, Ir.Op.Add, tb, scaled))
  | Ast.Bsub, Ast.Tptr elt, (Ast.Tint | Ast.Tchar | Ast.Tshort) ->
    let scaled = scale_index env elt tb in
    (Ast.Tptr elt, Ir.Tree.Binop (Ir.Op.P, Ir.Op.Sub, ta, scaled))
  | Ast.Bsub, Ast.Tptr elt, Ast.Tptr _ ->
    let diff =
      Ir.Tree.Binop
        (Ir.Op.I, Ir.Op.Sub,
         Ir.Tree.Cvt (Ir.Op.P, Ir.Op.I, ta),
         Ir.Tree.Cvt (Ir.Op.P, Ir.Op.I, tb))
    in
    let sz = Ast.ty_size elt in
    let t = if sz = 1 then diff else Ir.Tree.Binop (Ir.Op.I, Ir.Op.Div, diff, Ir.Tree.cnst sz) in
    (Ast.Tint, t)
  | _, (Ast.Tint | Ast.Tchar | Ast.Tshort), (Ast.Tint | Ast.Tchar | Ast.Tshort) ->
    (Ast.Tint, Ir.Tree.Binop (Ir.Op.I, ir_binop pos op, ta, tb))
  | _ ->
    err pos "invalid operands (%s, %s)" (Ast.ty_to_string tya) (Ast.ty_to_string tyb)

and scale_index env elt idx =
  ignore env;
  let sz = Ast.ty_size elt in
  if sz = 1 then idx
  else
    match idx with
    | Ir.Tree.Cnst (_, _, v) -> Ir.Tree.cnst (v * sz)
    | _ -> Ir.Tree.Binop (Ir.Op.I, Ir.Op.Mul, idx, Ir.Tree.cnst sz)

and lower_lvalue env (e : Ast.expr) : Ast.cty * Ir.Tree.tree =
  let pos = e.Ast.epos in
  match e.Ast.edesc with
  | Ast.Evar name -> (
    match lookup_var env name with
    | Some v -> (v.vty, addr_of_var pos v)
    | None -> (
      match Hashtbl.find_opt env.f.globals name with
      | Some ty -> (ty, Ir.Tree.Addrg name)
      | None -> err pos "unknown identifier %s" name))
  | Ast.Ederef p -> (
    let ty, t = lower_rvalue env p in
    match decay ty with
    | Ast.Tptr elt when elt <> Ast.Tvoid -> (elt, t)
    | _ -> err pos "cannot dereference %s" (Ast.ty_to_string ty))
  | Ast.Eindex (arr, idx) -> (
    let ty, base = lower_rvalue env arr in
    let _, i = lower_int env idx in
    match decay ty with
    | Ast.Tptr elt when elt <> Ast.Tvoid ->
      (elt, Ir.Tree.Binop (Ir.Op.P, Ir.Op.Add, base, scale_index env elt i))
    | _ -> err pos "cannot index %s" (Ast.ty_to_string ty))
  | _ -> err pos "expression is not an lvalue"

and lower_call env pos fname args =
  let ret, param_tys =
    match Hashtbl.find_opt env.f.functions fname with
    | Some sg -> sg
    | None -> err pos "call to undefined function %s" fname
  in
  if List.length args <> List.length param_tys then
    err pos "%s expects %d arguments, got %d" fname (List.length param_tys)
      (List.length args);
  (* Evaluate arguments left to right. Each argument tree is computed
     fully (spilling any nested calls), then all ARG statements are
     emitted contiguously before the CALL, in order. *)
  let arg_trees =
    List.map2
      (fun pty a ->
        let aty, at = lower_rvalue env a in
        check_assignable a.Ast.epos pty aty;
        let at = coerce a.Ast.epos pty aty at in
        (comp_ty pty, at))
      param_tys args
  in
  List.iter (fun (ty, t) -> emit env (Ir.Tree.Sarg (ty, t))) arg_trees;
  (ret, Ir.Tree.Addrg fname)

and intern_string env s =
  match List.find_opt (fun (_, s') -> s = s') env.f.strings with
  | Some (lbl, _) -> lbl
  | None ->
    let lbl = Printf.sprintf ".LC%d" env.f.next_string in
    env.f.next_string <- env.f.next_string + 1;
    env.f.strings <- (lbl, s) :: env.f.strings;
    lbl

(* Booleans as values: 1/0 through a temp. *)
and lower_bool_value env e =
  let ltrue_skipped = fresh_label env and lend = fresh_label env in
  let off = fresh_temp env Ast.Tint in
  lower_cond env e ~target:ltrue_skipped ~jump_if:false;
  emit env (Ir.Tree.Sasgn (Ir.Op.I, Ir.Tree.addrl off, Ir.Tree.cnst 1));
  emit env (Ir.Tree.Sjump lend);
  emit env (Ir.Tree.Slabel ltrue_skipped);
  emit env (Ir.Tree.Sasgn (Ir.Op.I, Ir.Tree.addrl off, Ir.Tree.cnst 0));
  emit env (Ir.Tree.Slabel lend);
  (Ast.Tint, Ir.Tree.Indir (Ir.Op.I, Ir.Tree.addrl off))

(* Conditional lowering: if [jump_if] then jump to [target] when e is
   true, else jump when e is false; fall through otherwise. *)
and lower_cond env (e : Ast.expr) ~target ~jump_if =
  let pos = e.Ast.epos in
  match e.Ast.edesc with
  | Ast.Eunop (Ast.Unot, a) -> lower_cond env a ~target ~jump_if:(not jump_if)
  | Ast.Ebinop (Ast.Bland, a, b) ->
    if not jump_if then begin
      (* jump to target if (a && b) is false *)
      lower_cond env a ~target ~jump_if:false;
      lower_cond env b ~target ~jump_if:false
    end
    else begin
      let skip = fresh_label env in
      lower_cond env a ~target:skip ~jump_if:false;
      lower_cond env b ~target ~jump_if:true;
      emit env (Ir.Tree.Slabel skip)
    end
  | Ast.Ebinop (Ast.Blor, a, b) ->
    if jump_if then begin
      lower_cond env a ~target ~jump_if:true;
      lower_cond env b ~target ~jump_if:true
    end
    else begin
      let skip = fresh_label env in
      lower_cond env a ~target:skip ~jump_if:true;
      lower_cond env b ~target ~jump_if:false;
      emit env (Ir.Tree.Slabel skip)
    end
  | Ast.Ebinop (op, a, b) when relop_of_binop op <> None -> (
    match const_eval e with
    | Some v -> if (v <> 0) = jump_if then emit env (Ir.Tree.Sjump target)
    | None ->
      let rel = Option.get (relop_of_binop op) in
      let rel = if jump_if then rel else Ir.Op.negate_relop rel in
      let tya, ta = lower_rvalue env a in
      let tyb, tb = lower_rvalue env b in
      let cty =
        match (decay tya, decay tyb) with
        | Ast.Tptr _, _ | _, Ast.Tptr _ -> Ir.Op.P
        | _ -> Ir.Op.I
      in
      let ta = if cty = Ir.Op.P then coerce pos (Ast.Tptr Ast.Tvoid) tya ta else ta in
      let tb = if cty = Ir.Op.P then coerce pos (Ast.Tptr Ast.Tvoid) tyb tb else tb in
      emit env (Ir.Tree.Scnd (rel, cty, ta, tb, target)))
  | _ -> (
    match const_eval e with
    | Some v -> if (v <> 0) = jump_if then emit env (Ir.Tree.Sjump target)
    | None ->
      let ty, t = lower_rvalue env e in
      let cty = comp_ty ty in
      let zero =
        if cty = Ir.Op.P then Ir.Tree.Cvt (Ir.Op.I, Ir.Op.P, Ir.Tree.cnst 0)
        else Ir.Tree.cnst 0
      in
      let rel = if jump_if then Ir.Op.Ne else Ir.Op.Eq in
      emit env (Ir.Tree.Scnd (rel, cty, t, zero, target)))

(* ---- statements ---- *)

let rec lower_stmt env (s : Ast.stmt) =
  let pos = s.Ast.spos in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> (
    match e.Ast.edesc with
    | Ast.Ecall (fname, args) ->
      let ret, addr = lower_call env pos fname args in
      emit env
        (Ir.Tree.Scall
           ((match ret with Ast.Tvoid -> Ir.Op.V | t -> comp_ty t), addr))
    | Ast.Eassign (lhs, rhs) ->
      let ty, addr = lower_lvalue env lhs in
      let rty, rv = lower_rvalue env rhs in
      check_assignable pos ty rty;
      emit env (Ir.Tree.Sasgn (ir_ty pos ty, addr, narrow ty (coerce pos ty rty rv)))
    | _ ->
      (* evaluate for side effects; spills/ARGs already emitted *)
      let _, _t = lower_rvalue env e in
      ())
  | Ast.Sdecl (ty, name, init) -> (
    if Ast.ty_size ty = 0 then err pos "variable %s has void type" name;
    let kind = define_local env pos name ty in
    match init with
    | None -> ()
    | Some e ->
      let rty, rv = lower_rvalue env e in
      check_assignable pos ty rty;
      let addr =
        match kind with
        | Local off -> Ir.Tree.addrl off
        | Formal off -> Ir.Tree.addrf off
      in
      emit env (Ir.Tree.Sasgn (ir_ty pos ty, addr, narrow ty (coerce pos ty rty rv))))
  | Ast.Sif (c, then_, else_) ->
    let lelse = fresh_label env in
    lower_cond env c ~target:lelse ~jump_if:false;
    lower_block env then_;
    if else_ = [] then emit env (Ir.Tree.Slabel lelse)
    else begin
      let lend = fresh_label env in
      emit env (Ir.Tree.Sjump lend);
      emit env (Ir.Tree.Slabel lelse);
      lower_block env else_;
      emit env (Ir.Tree.Slabel lend)
    end
  | Ast.Swhile (c, body) ->
    let ltop = fresh_label env and lend = fresh_label env in
    emit env (Ir.Tree.Slabel ltop);
    lower_cond env c ~target:lend ~jump_if:false;
    env.loops <- (lend, ltop) :: env.loops;
    lower_block env body;
    env.loops <- List.tl env.loops;
    emit env (Ir.Tree.Sjump ltop);
    emit env (Ir.Tree.Slabel lend)
  | Ast.Sdo (body, c) ->
    let ltop = fresh_label env
    and lcont = fresh_label env
    and lend = fresh_label env in
    emit env (Ir.Tree.Slabel ltop);
    env.loops <- (lend, lcont) :: env.loops;
    lower_block env body;
    env.loops <- List.tl env.loops;
    emit env (Ir.Tree.Slabel lcont);
    lower_cond env c ~target:ltop ~jump_if:true;
    emit env (Ir.Tree.Slabel lend)
  | Ast.Sfor (init, cond, step, body) ->
    push_scope env;
    (match init with Some s -> lower_stmt env s | None -> ());
    let ltop = fresh_label env
    and lcont = fresh_label env
    and lend = fresh_label env in
    emit env (Ir.Tree.Slabel ltop);
    (match cond with
    | Some c -> lower_cond env c ~target:lend ~jump_if:false
    | None -> ());
    env.loops <- (lend, lcont) :: env.loops;
    lower_block env body;
    env.loops <- List.tl env.loops;
    emit env (Ir.Tree.Slabel lcont);
    (match step with Some s -> lower_stmt env s | None -> ());
    emit env (Ir.Tree.Sjump ltop);
    emit env (Ir.Tree.Slabel lend);
    pop_scope env
  | Ast.Sreturn None ->
    if env.ret_ty <> Ast.Tvoid then err pos "return without a value";
    emit env (Ir.Tree.Sret (Ir.Op.V, None))
  | Ast.Sreturn (Some e) ->
    if env.ret_ty = Ast.Tvoid then err pos "void function returns a value";
    let rty, rv = lower_rvalue env e in
    check_assignable pos env.ret_ty rty;
    emit env
      (Ir.Tree.Sret (comp_ty env.ret_ty, Some (coerce pos env.ret_ty rty rv)))
  | Ast.Sbreak -> (
    match env.loops with
    | (lend, _) :: _ -> emit env (Ir.Tree.Sjump lend)
    | [] -> err pos "break outside a loop")
  | Ast.Scontinue -> (
    match env.loops with
    | (_, lcont) :: _ -> emit env (Ir.Tree.Sjump lcont)
    | [] -> err pos "continue outside a loop")
  | Ast.Sblock body -> lower_block env body

and lower_block env body =
  push_scope env;
  List.iter (lower_stmt env) body;
  pop_scope env

(* ---- program ---- *)

let const_of_init pos e =
  match const_eval e with
  | Some v -> v
  | None -> err pos "initializer must be a constant expression"

let bytes_of_value ty v =
  match Ast.ty_size ty with
  | 1 -> [ v land 0xff ]
  | 2 -> [ v land 0xff; (v asr 8) land 0xff ]
  | _ -> [ v land 0xff; (v asr 8) land 0xff; (v asr 16) land 0xff; (v asr 24) land 0xff ]

let lower_program (prog : Ast.program) : Ir.Tree.program =
  let f =
    {
      globals = Hashtbl.create 64;
      functions = Hashtbl.create 64;
      strings = [];
      next_string = 0;
    }
  in
  let nowhere = { Ast.line = 0; col = 0 } in
  (* runtime-provided builtins (see Vm.Isa.builtins) *)
  Hashtbl.add f.functions "putchar" (Ast.Tint, [ Ast.Tint ]);
  Hashtbl.add f.functions "getchar" (Ast.Tint, []);
  Hashtbl.add f.functions "print_int" (Ast.Tvoid, [ Ast.Tint ]);
  Hashtbl.add f.functions "abort" (Ast.Tvoid, []);
  (* pass 1: collect signatures *)
  List.iter
    (fun d ->
      match d with
      | Ast.Dglobal (ty, name, _) ->
        if Hashtbl.mem f.globals name then err nowhere "duplicate global %s" name;
        Hashtbl.add f.globals name ty
      | Ast.Dfunc (ret, name, params, _) ->
        if Hashtbl.mem f.functions name then
          err nowhere "duplicate function %s" name;
        Hashtbl.add f.functions name (ret, List.map fst params))
    prog;
  (* pass 2: lower *)
  let ir_globals = ref [] in
  let ir_funcs = ref [] in
  List.iter
    (fun d ->
      match d with
      | Ast.Dglobal (ty, name, init) ->
        let gsize = max 1 (Ast.ty_size ty) in
        let ginit =
          match init with
          | None -> None
          | Some (Ast.Iscalar e) ->
            Some (bytes_of_value ty (const_of_init nowhere e))
          | Some (Ast.Iarray items) -> (
            match ty with
            | Ast.Tarray (elt, n) ->
              if List.length items > n then err nowhere "too many initializers for %s" name;
              let vals =
                List.concat_map
                  (fun e -> bytes_of_value elt (const_of_init nowhere e))
                  items
              in
              let pad = (Ast.ty_size elt * n) - List.length vals in
              Some (vals @ List.init (max 0 pad) (fun _ -> 0))
            | _ -> err nowhere "brace initializer on non-array %s" name)
          | Some (Ast.Istring s) ->
            Some (List.init (String.length s) (fun i -> Char.code s.[i]) @ [ 0 ])
        in
        ir_globals := { Ir.Tree.gname = name; gsize; ginit } :: !ir_globals
      | Ast.Dfunc (ret, name, params, body) ->
        let env =
          {
            f;
            scopes = [];
            frame_top = 0;
            max_frame = 0;
            next_label = 0;
            out = [];
            loops = [];
            ret_ty = ret;
          }
        in
        push_scope env;
        (* formals at offsets 0,4,8,... each in a 4-byte slot *)
        List.iteri
          (fun i (pty, pname) ->
            match env.scopes with
            | s :: _ ->
              if Hashtbl.mem s pname then err nowhere "duplicate parameter %s" pname;
              Hashtbl.add s pname { vkind = Formal (4 * i); vty = pty }
            | [] -> assert false)
          params;
        lower_block env body;
        (* implicit return *)
        (match env.out with
        | Ir.Tree.Sret _ :: _ -> ()
        | _ ->
          if ret = Ast.Tvoid then emit env (Ir.Tree.Sret (Ir.Op.V, None))
          else emit env (Ir.Tree.Sret (Ir.Op.I, Some (Ir.Tree.cnst 0))));
        pop_scope env;
        let func =
          {
            Ir.Tree.fname = name;
            formals = List.map (fun (pty, pname) -> (pname, ir_ty nowhere (decay pty))) params;
            frame_size = (env.max_frame + 3) / 4 * 4;
            body = List.rev env.out;
          }
        in
        ir_funcs := func :: !ir_funcs)
    prog;
  (* string literals become globals *)
  let str_globals =
    List.rev_map
      (fun (lbl, s) ->
        {
          Ir.Tree.gname = lbl;
          gsize = String.length s + 1;
          ginit = Some (List.init (String.length s) (fun i -> Char.code s.[i]) @ [ 0 ]);
        })
      f.strings
  in
  { Ir.Tree.globals = List.rev !ir_globals @ str_globals; funcs = List.rev !ir_funcs }

let compile src =
  let prog = lower_program (Parser.parse src) in
  Ir.Validate.check_exn prog;
  prog
