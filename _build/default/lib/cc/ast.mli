(** Abstract syntax of MiniC, the C subset compiled by this repo.

    MiniC covers the constructs the paper's benchmark programs need:
    int/char/short scalars, pointers, fixed-size arrays, string literals,
    the usual operators with C precedence, control flow (if/while/for/
    do-while, break/continue), and functions. No structs, floats, typedefs
    or preprocessor — the compressors never see those features anyway,
    only the tree IR they lower to. *)

type pos = { line : int; col : int }

type cty =
  | Tint
  | Tchar
  | Tshort
  | Tvoid
  | Tptr of cty
  | Tarray of cty * int

type unop = Uneg | Unot (* logical ! *) | Ubnot (* bitwise ~ *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bband | Bbor | Bbxor | Bshl | Bshr
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Bland | Blor   (** short-circuit && and || *)

type expr = { edesc : edesc; epos : pos }

and edesc =
  | Eint of int
  | Echar of char
  | Estring of string
  | Evar of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eassign of expr * expr            (** lvalue = value *)
  | Ecall of string * expr list
  | Eindex of expr * expr             (** a[i] *)
  | Ederef of expr                    (** *p *)
  | Eaddr of expr                     (** &lv *)
  | Esizeof of cty
  | Econd of expr * expr * expr       (** e ? a : b *)

type stmt = { sdesc : sdesc; spos : pos }

and sdesc =
  | Sexpr of expr
  | Sdecl of cty * string * expr option   (** local declaration *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr               (** do { } while (e); *)
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type decl =
  | Dglobal of cty * string * init option
  | Dfunc of cty * string * (cty * string) list * stmt list

and init =
  | Iscalar of expr
  | Iarray of expr list
  | Istring of string

type program = decl list

val ty_size : cty -> int
(** Size in bytes; arrays are element size times length. *)

val ty_align : cty -> int
val ty_to_string : cty -> string
val equal_cty : cty -> cty -> bool
