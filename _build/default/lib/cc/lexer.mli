(** Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int
  | CHAR_LIT of char
  | STRING_LIT of string
  | IDENT of string
  | KW of string        (** int, char, short, void, if, else, while, do,
                            for, return, break, continue, sizeof *)
  | PUNCT of string     (** operators and separators, longest-match *)
  | EOF

type lexeme = { tok : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

val tokenize : string -> lexeme list
(** Whole-input tokenization. Handles decimal/hex integer literals,
    character escapes, string literals, line ([//]) and block comments.
    @raise Lex_error on malformed input. *)

val token_to_string : token -> string
