(** Lowering from the MiniC AST to the lcc-style tree IR, with type
    checking folded in (as in lcc itself).

    Conventions targeted by this lowering, relied on by the VM code
    generator and both compressors:
    - all arithmetic is performed on 32-bit [I] values; [char]/[short]
      loads widen through [Cvt], stores narrow through [Cvt];
    - array-typed names decay to their address;
    - pointer arithmetic scales by the element size at lowering time;
    - value-returning calls are spilled to fresh frame temporaries
      immediately after their ARG statements, so a [CALL] tree only ever
      appears as the direct child of an assignment or call-for-effect
      root — exactly the forest shape lcc emits;
    - short-circuit operators and comparisons-as-values lower to branches
      and a temporary;
    - string literals become NUL-terminated byte globals named [.LCn]. *)

exception Compile_error of string * Ast.pos

val lower_program : Ast.program -> Ir.Tree.program
(** @raise Compile_error on type errors, unknown identifiers, bad
    initializers, arity mismatches, or non-lvalue assignment targets. *)

val compile : string -> Ir.Tree.program
(** [parse] + [lower_program] + IR validation, the whole frontend. *)
