exception Parse_error of string * Ast.pos

type state = { mutable toks : Lexer.lexeme list }

let peek st =
  match st.toks with
  | [] -> { Lexer.tok = Lexer.EOF; pos = { Ast.line = 0; col = 0 } }
  | l :: _ -> l

let pos st = (peek st).Lexer.pos

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let error st msg = raise (Parse_error (msg, pos st))

let expect_punct st p =
  match (peek st).Lexer.tok with
  | Lexer.PUNCT q when q = p -> advance st
  | t ->
    error st
      (Printf.sprintf "expected '%s', found '%s'" p (Lexer.token_to_string t))

let accept_punct st p =
  match (peek st).Lexer.tok with
  | Lexer.PUNCT q when q = p ->
    advance st;
    true
  | _ -> false

let accept_kw st k =
  match (peek st).Lexer.tok with
  | Lexer.KW q when q = k ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match (peek st).Lexer.tok with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> error st (Printf.sprintf "expected identifier, found '%s'" (Lexer.token_to_string t))

let mk p d = { Ast.edesc = d; epos = p }

(* ---- types ---- *)

let base_type st =
  match (peek st).Lexer.tok with
  | Lexer.KW "int" ->
    advance st;
    Some Ast.Tint
  | Lexer.KW "char" ->
    advance st;
    Some Ast.Tchar
  | Lexer.KW "short" ->
    advance st;
    Some Ast.Tshort
  | Lexer.KW "void" ->
    advance st;
    Some Ast.Tvoid
  | _ -> None

let rec with_stars st ty =
  if accept_punct st "*" then with_stars st (Ast.Tptr ty) else ty

(* ---- expressions, precedence climbing ---- *)

let binop_of_punct = function
  | "*" -> Some (Ast.Bmul, 10)
  | "/" -> Some (Ast.Bdiv, 10)
  | "%" -> Some (Ast.Bmod, 10)
  | "+" -> Some (Ast.Badd, 9)
  | "-" -> Some (Ast.Bsub, 9)
  | "<<" -> Some (Ast.Bshl, 8)
  | ">>" -> Some (Ast.Bshr, 8)
  | "<" -> Some (Ast.Blt, 7)
  | "<=" -> Some (Ast.Ble, 7)
  | ">" -> Some (Ast.Bgt, 7)
  | ">=" -> Some (Ast.Bge, 7)
  | "==" -> Some (Ast.Beq, 6)
  | "!=" -> Some (Ast.Bne, 6)
  | "&" -> Some (Ast.Bband, 5)
  | "^" -> Some (Ast.Bbxor, 4)
  | "|" -> Some (Ast.Bbor, 3)
  | "&&" -> Some (Ast.Bland, 2)
  | "||" -> Some (Ast.Blor, 1)
  | _ -> None

let compound_ops =
  [ ("+=", Ast.Badd); ("-=", Ast.Bsub); ("*=", Ast.Bmul); ("/=", Ast.Bdiv);
    ("%=", Ast.Bmod); ("&=", Ast.Bband); ("|=", Ast.Bbor); ("^=", Ast.Bbxor);
    ("<<=", Ast.Bshl); (">>=", Ast.Bshr) ]

let rec parse_expression st = parse_assignment st

and parse_assignment st =
  let lhs = parse_conditional st in
  let p = pos st in
  match (peek st).Lexer.tok with
  | Lexer.PUNCT "=" ->
    advance st;
    let rhs = parse_assignment st in
    mk p (Ast.Eassign (lhs, rhs))
  | Lexer.PUNCT q when List.mem_assoc q compound_ops ->
    advance st;
    let rhs = parse_assignment st in
    let op = List.assoc q compound_ops in
    mk p (Ast.Eassign (lhs, mk p (Ast.Ebinop (op, lhs, rhs))))
  | _ -> lhs

and parse_conditional st =
  let c = parse_binary st 1 in
  if accept_punct st "?" then begin
    let p = pos st in
    let a = parse_expression st in
    expect_punct st ":";
    let b = parse_conditional st in
    mk p (Ast.Econd (c, a, b))
  end
  else c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match (peek st).Lexer.tok with
    | Lexer.PUNCT q -> (
      match binop_of_punct q with
      | Some (op, prec) when prec >= min_prec ->
        let p = pos st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := mk p (Ast.Ebinop (op, !lhs, rhs))
      | _ -> continue := false)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  let p = pos st in
  match (peek st).Lexer.tok with
  | Lexer.PUNCT "-" ->
    advance st;
    mk p (Ast.Eunop (Ast.Uneg, parse_unary st))
  | Lexer.PUNCT "!" ->
    advance st;
    mk p (Ast.Eunop (Ast.Unot, parse_unary st))
  | Lexer.PUNCT "~" ->
    advance st;
    mk p (Ast.Eunop (Ast.Ubnot, parse_unary st))
  | Lexer.PUNCT "*" ->
    advance st;
    mk p (Ast.Ederef (parse_unary st))
  | Lexer.PUNCT "&" ->
    advance st;
    mk p (Ast.Eaddr (parse_unary st))
  | Lexer.PUNCT "++" ->
    advance st;
    let e = parse_unary st in
    mk p (Ast.Eassign (e, mk p (Ast.Ebinop (Ast.Badd, e, mk p (Ast.Eint 1)))))
  | Lexer.PUNCT "--" ->
    advance st;
    let e = parse_unary st in
    mk p (Ast.Eassign (e, mk p (Ast.Ebinop (Ast.Bsub, e, mk p (Ast.Eint 1)))))
  | Lexer.KW "sizeof" ->
    advance st;
    expect_punct st "(";
    let ty =
      match base_type st with
      | Some b -> with_stars st b
      | None -> error st "sizeof expects a type"
    in
    expect_punct st ")";
    mk p (Ast.Esizeof ty)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    let p = pos st in
    match (peek st).Lexer.tok with
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expression st in
      expect_punct st "]";
      e := mk p (Ast.Eindex (!e, idx))
    | Lexer.PUNCT "++" ->
      advance st;
      (* (e = e + 1) - 1 : value is the pre-increment value *)
      let inc =
        mk p (Ast.Eassign (!e, mk p (Ast.Ebinop (Ast.Badd, !e, mk p (Ast.Eint 1)))))
      in
      e := mk p (Ast.Ebinop (Ast.Bsub, inc, mk p (Ast.Eint 1)))
    | Lexer.PUNCT "--" ->
      advance st;
      let dec =
        mk p (Ast.Eassign (!e, mk p (Ast.Ebinop (Ast.Bsub, !e, mk p (Ast.Eint 1)))))
      in
      e := mk p (Ast.Ebinop (Ast.Badd, dec, mk p (Ast.Eint 1)))
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  let p = pos st in
  match (peek st).Lexer.tok with
  | Lexer.INT_LIT n ->
    advance st;
    mk p (Ast.Eint n)
  | Lexer.CHAR_LIT c ->
    advance st;
    mk p (Ast.Echar c)
  | Lexer.STRING_LIT s ->
    advance st;
    mk p (Ast.Estring s)
  | Lexer.IDENT name -> (
    advance st;
    if accept_punct st "(" then begin
      let args = ref [] in
      if not (accept_punct st ")") then begin
        let rec go () =
          args := parse_expression st :: !args;
          if accept_punct st "," then go () else expect_punct st ")"
        in
        go ()
      end;
      mk p (Ast.Ecall (name, List.rev !args))
    end
    else mk p (Ast.Evar name))
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expression st in
    expect_punct st ")";
    e
  | t -> error st (Printf.sprintf "unexpected token '%s'" (Lexer.token_to_string t))

(* ---- statements ---- *)

let mk_stmt p d = { Ast.sdesc = d; spos = p }

let rec parse_stmt st =
  let p = pos st in
  match (peek st).Lexer.tok with
  | Lexer.PUNCT "{" ->
    advance st;
    let body = parse_block st in
    mk_stmt p (Ast.Sblock body)
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_expression st in
    expect_punct st ")";
    let then_ = parse_stmt_as_block st in
    let else_ = if accept_kw st "else" then parse_stmt_as_block st else [] in
    mk_stmt p (Ast.Sif (c, then_, else_))
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let c = parse_expression st in
    expect_punct st ")";
    let body = parse_stmt_as_block st in
    mk_stmt p (Ast.Swhile (c, body))
  | Lexer.KW "do" ->
    advance st;
    let body = parse_stmt_as_block st in
    if not (accept_kw st "while") then error st "expected 'while' after do-body";
    expect_punct st "(";
    let c = parse_expression st in
    expect_punct st ")";
    expect_punct st ";";
    mk_stmt p (Ast.Sdo (body, c))
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if accept_punct st ";" then None
      else begin
        let s = parse_simple_stmt st in
        expect_punct st ";";
        Some s
      end
    in
    let cond =
      if accept_punct st ";" then None
      else begin
        let e = parse_expression st in
        expect_punct st ";";
        Some e
      end
    in
    let step =
      if (peek st).Lexer.tok = Lexer.PUNCT ")" then None
      else Some (mk_stmt (pos st) (Ast.Sexpr (parse_expression st)))
    in
    expect_punct st ")";
    let body = parse_stmt_as_block st in
    mk_stmt p (Ast.Sfor (init, cond, step, body))
  | Lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then mk_stmt p (Ast.Sreturn None)
    else begin
      let e = parse_expression st in
      expect_punct st ";";
      mk_stmt p (Ast.Sreturn (Some e))
    end
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    mk_stmt p Ast.Sbreak
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    mk_stmt p Ast.Scontinue
  | _ ->
    let s = parse_simple_stmt st in
    expect_punct st ";";
    s

and parse_simple_stmt st =
  let p = pos st in
  match base_type st with
  | Some b ->
    let ty = with_stars st b in
    let name = expect_ident st in
    let ty =
      if accept_punct st "[" then begin
        let n =
          match (peek st).Lexer.tok with
          | Lexer.INT_LIT n ->
            advance st;
            n
          | _ -> error st "array size must be an integer literal"
        in
        expect_punct st "]";
        Ast.Tarray (ty, n)
      end
      else ty
    in
    let init = if accept_punct st "=" then Some (parse_expression st) else None in
    mk_stmt p (Ast.Sdecl (ty, name, init))
  | None -> mk_stmt p (Ast.Sexpr (parse_expression st))

and parse_stmt_as_block st =
  if (peek st).Lexer.tok = Lexer.PUNCT "{" then begin
    advance st;
    parse_block st
  end
  else [ parse_stmt st ]

and parse_block st =
  let out = ref [] in
  let rec go () =
    if accept_punct st "}" then ()
    else begin
      out := parse_stmt st :: !out;
      go ()
    end
  in
  go ();
  List.rev !out

(* ---- declarations ---- *)

let parse_decl st =
  let b =
    match base_type st with
    | Some b -> b
    | None -> error st "expected a declaration"
  in
  let ty = with_stars st b in
  let name = expect_ident st in
  if accept_punct st "(" then begin
    (* function *)
    let params = ref [] in
    if not (accept_punct st ")") then begin
      if accept_kw st "void" then expect_punct st ")"
      else begin
        let rec go () =
          let pb =
            match base_type st with
            | Some pb -> pb
            | None -> error st "expected parameter type"
          in
          let pty = with_stars st pb in
          let pname = expect_ident st in
          params := (pty, pname) :: !params;
          if accept_punct st "," then go () else expect_punct st ")"
        in
        go ()
      end
    end;
    expect_punct st "{";
    let body = parse_block st in
    Ast.Dfunc (ty, name, List.rev !params, body)
  end
  else begin
    (* global *)
    let ty =
      if accept_punct st "[" then begin
        let n =
          match (peek st).Lexer.tok with
          | Lexer.INT_LIT n ->
            advance st;
            n
          | _ -> error st "array size must be an integer literal"
        in
        expect_punct st "]";
        Ast.Tarray (ty, n)
      end
      else ty
    in
    let init =
      if accept_punct st "=" then
        if accept_punct st "{" then begin
          let items = ref [] in
          let rec go () =
            items := parse_expression st :: !items;
            if accept_punct st "," then go () else expect_punct st "}"
          in
          go ();
          Some (Ast.Iarray (List.rev !items))
        end
        else
          match (peek st).Lexer.tok with
          | Lexer.STRING_LIT s ->
            advance st;
            Some (Ast.Istring s)
          | _ -> Some (Ast.Iscalar (parse_expression st))
      else None
    in
    expect_punct st ";";
    Ast.Dglobal (ty, name, init)
  end

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let out = ref [] in
  let rec go () =
    match (peek st).Lexer.tok with
    | Lexer.EOF -> ()
    | _ ->
      out := parse_decl st :: !out;
      go ()
  in
  go ();
  List.rev !out

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expression st in
  (match (peek st).Lexer.tok with
  | Lexer.EOF -> ()
  | t -> error st (Printf.sprintf "trailing input '%s'" (Lexer.token_to_string t)));
  e
