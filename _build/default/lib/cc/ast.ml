type pos = { line : int; col : int }

type cty =
  | Tint
  | Tchar
  | Tshort
  | Tvoid
  | Tptr of cty
  | Tarray of cty * int

type unop = Uneg | Unot | Ubnot

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bband | Bbor | Bbxor | Bshl | Bshr
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Bland | Blor

type expr = { edesc : edesc; epos : pos }

and edesc =
  | Eint of int
  | Echar of char
  | Estring of string
  | Evar of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eassign of expr * expr
  | Ecall of string * expr list
  | Eindex of expr * expr
  | Ederef of expr
  | Eaddr of expr
  | Esizeof of cty
  | Econd of expr * expr * expr

type stmt = { sdesc : sdesc; spos : pos }

and sdesc =
  | Sexpr of expr
  | Sdecl of cty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type decl =
  | Dglobal of cty * string * init option
  | Dfunc of cty * string * (cty * string) list * stmt list

and init = Iscalar of expr | Iarray of expr list | Istring of string

type program = decl list

let rec ty_size = function
  | Tint -> 4
  | Tchar -> 1
  | Tshort -> 2
  | Tvoid -> 0
  | Tptr _ -> 4
  | Tarray (t, n) -> ty_size t * n

let rec ty_align = function
  | Tint | Tptr _ -> 4
  | Tchar -> 1
  | Tshort -> 2
  | Tvoid -> 1
  | Tarray (t, _) -> ty_align t

let rec ty_to_string = function
  | Tint -> "int"
  | Tchar -> "char"
  | Tshort -> "short"
  | Tvoid -> "void"
  | Tptr t -> ty_to_string t ^ "*"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n

let equal_cty (a : cty) (b : cty) = a = b
