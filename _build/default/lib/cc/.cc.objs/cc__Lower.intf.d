lib/cc/lower.mli: Ast Ir
