lib/cc/ast.mli:
