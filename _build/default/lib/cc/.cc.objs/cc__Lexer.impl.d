lib/cc/lexer.ml: Ast Buffer List Printf String
