lib/cc/ast.ml: Printf
