lib/cc/lower.ml: Ast Char Hashtbl Ir List Option Parser Printf String
