(** Recursive-descent parser for MiniC with C operator precedence.

    Compound assignments ([+=] etc.) and [++]/[--] are desugared during
    parsing: [a += b] becomes [a = a + b], prefix [++a] becomes
    [a = a + 1], and postfix [a++] used for value becomes
    [(a = a + 1) - 1], which yields the pre-increment value. The desugared
    forms are what the paper's IR examples show (lcc does the same). *)

exception Parse_error of string * Ast.pos

val parse : string -> Ast.program
(** @raise Parse_error / [Lexer.Lex_error] on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests). *)
