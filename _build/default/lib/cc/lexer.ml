type token =
  | INT_LIT of int
  | CHAR_LIT of char
  | STRING_LIT of string
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type lexeme = { tok : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

let keywords =
  [ "int"; "char"; "short"; "void"; "if"; "else"; "while"; "do"; "for";
    "return"; "break"; "continue"; "sizeof" ]

(* Longest-match first. *)
let puncts =
  [ "<<="; ">>="; "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-=";
    "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--"; "->"; "+"; "-"; "*"; "/";
    "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "="; "("; ")"; "{"; "}"; "[";
    "]"; ";"; ","; "?"; ":" ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let here st = { Ast.line = st.line; col = st.col }

let peek st n =
  if st.pos + n < String.length st.src then Some st.src.[st.pos + n] else None

let advance st =
  (match peek st 0 with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match (peek st 0, peek st 1) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
    advance st;
    skip_trivia st
  | Some '/', Some '/' ->
    while peek st 0 <> None && peek st 0 <> Some '\n' do advance st done;
    skip_trivia st
  | Some '/', Some '*' ->
    let start = here st in
    advance st;
    advance st;
    let rec go () =
      match (peek st 0, peek st 1) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> raise (Lex_error ("unterminated comment", start))
      | _ ->
        advance st;
        go ()
    in
    go ();
    skip_trivia st
  | _ -> ()

let escape_char st pos =
  match peek st 0 with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | _ -> raise (Lex_error ("bad escape", pos))

let lex_number st =
  let start = st.pos in
  if peek st 0 = Some '0' && (peek st 1 = Some 'x' || peek st 1 = Some 'X')
  then begin
    advance st;
    advance st;
    let hstart = st.pos in
    while match peek st 0 with Some c when is_hex c -> true | _ -> false do
      advance st
    done;
    int_of_string ("0x" ^ String.sub st.src hstart (st.pos - hstart))
  end
  else begin
    while match peek st 0 with Some c when is_digit c -> true | _ -> false do
      advance st
    done;
    int_of_string (String.sub st.src start (st.pos - start))
  end

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let out = ref [] in
  let emit tok pos = out := { tok; pos } :: !out in
  let rec go () =
    skip_trivia st;
    let pos = here st in
    match peek st 0 with
    | None -> emit EOF pos
    | Some c when is_digit c ->
      emit (INT_LIT (lex_number st)) pos;
      go ()
    | Some c when is_ident_start c ->
      let start = st.pos in
      while
        match peek st 0 with Some c when is_ident_char c -> true | _ -> false
      do
        advance st
      done;
      let s = String.sub src start (st.pos - start) in
      emit (if List.mem s keywords then KW s else IDENT s) pos;
      go ()
    | Some '\'' ->
      advance st;
      let c =
        match peek st 0 with
        | Some '\\' ->
          advance st;
          escape_char st pos
        | Some c ->
          advance st;
          c
        | None -> raise (Lex_error ("unterminated char literal", pos))
      in
      if peek st 0 <> Some '\'' then
        raise (Lex_error ("unterminated char literal", pos));
      advance st;
      emit (CHAR_LIT c) pos;
      go ()
    | Some '"' ->
      advance st;
      let buf = Buffer.create 16 in
      let rec str () =
        match peek st 0 with
        | Some '"' -> advance st
        | Some '\\' ->
          advance st;
          Buffer.add_char buf (escape_char st pos);
          str ()
        | Some c ->
          advance st;
          Buffer.add_char buf c;
          str ()
        | None -> raise (Lex_error ("unterminated string literal", pos))
      in
      str ();
      emit (STRING_LIT (Buffer.contents buf)) pos;
      go ()
    | Some c -> (
      let matched =
        List.find_opt
          (fun p ->
            let n = String.length p in
            st.pos + n <= String.length src && String.sub src st.pos n = p)
          puncts
      in
      match matched with
      | Some p ->
        for _ = 1 to String.length p do advance st done;
        emit (PUNCT p) pos;
        go ()
      | None -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos)))
  in
  go ();
  List.rev !out

let token_to_string = function
  | INT_LIT n -> string_of_int n
  | CHAR_LIT c -> Printf.sprintf "%C" c
  | STRING_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
