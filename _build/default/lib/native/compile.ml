let compile_instr (i : Vm.Isa.instr) : Mach.ninstr list =
  match i with
  | Vm.Isa.Ld (w, rd, imm, rs) -> [ Mach.Nmov (w, Mach.Reg rd, Mach.Mem (rs, imm)) ]
  | Vm.Isa.St (w, rs2, imm, rs1) -> [ Mach.Nmov (w, Mach.Mem (rs1, imm), Mach.Reg rs2) ]
  | Vm.Isa.Ldx (w, rd, rs) -> [ Mach.Nmov (w, Mach.Reg rd, Mach.Mem (rs, 0)) ]
  | Vm.Isa.Stx (w, rs2, rs1) -> [ Mach.Nmov (w, Mach.Mem (rs1, 0), Mach.Reg rs2) ]
  | Vm.Isa.Li (rd, v) -> [ Mach.Nmov (Vm.Isa.W, Mach.Reg rd, Mach.Imm v) ]
  | Vm.Isa.La (rd, s) -> [ Mach.Nlea (rd, s) ]
  | Vm.Isa.Mov (rd, rs) ->
    if rd = rs then [] else [ Mach.Nmov (Vm.Isa.W, Mach.Reg rd, Mach.Reg rs) ]
  | Vm.Isa.Alu (op, rd, rs1, rs2) ->
    if rd = rs1 then [ Mach.Nalu (op, rd, Mach.Reg rs2) ]
    else if rd = rs2 && (match op with Vm.Isa.Add | Vm.Isa.Mul | Vm.Isa.And | Vm.Isa.Or | Vm.Isa.Xor -> true | _ -> false)
    then [ Mach.Nalu (op, rd, Mach.Reg rs1) ]
    else
      [ Mach.Nmov (Vm.Isa.W, Mach.Reg rd, Mach.Reg rs1); Mach.Nalu (op, rd, Mach.Reg rs2) ]
  | Vm.Isa.Alui (op, rd, rs1, v) ->
    if rd = rs1 then [ Mach.Nalu (op, rd, Mach.Imm v) ]
    else [ Mach.Nmov (Vm.Isa.W, Mach.Reg rd, Mach.Reg rs1); Mach.Nalu (op, rd, Mach.Imm v) ]
  | Vm.Isa.Neg (rd, rs) ->
    if rd = rs then [ Mach.Nneg rd ]
    else [ Mach.Nmov (Vm.Isa.W, Mach.Reg rd, Mach.Reg rs); Mach.Nneg rd ]
  | Vm.Isa.Not (rd, rs) ->
    if rd = rs then [ Mach.Nnot rd ]
    else [ Mach.Nmov (Vm.Isa.W, Mach.Reg rd, Mach.Reg rs); Mach.Nnot rd ]
  | Vm.Isa.Sext (w, rd, rs) ->
    if rd = rs then [ Mach.Nsext (w, rd) ]
    else [ Mach.Nmov (Vm.Isa.W, Mach.Reg rd, Mach.Reg rs); Mach.Nsext (w, rd) ]
  | Vm.Isa.Br (rel, rs1, rs2, l) -> [ Mach.Ncmpbr (rel, rs1, Mach.Reg rs2, l) ]
  | Vm.Isa.Bri (rel, rs1, v, l) -> [ Mach.Ncmpbr (rel, rs1, Mach.Imm v, l) ]
  | Vm.Isa.Jmp l -> [ Mach.Njmp l ]
  | Vm.Isa.Call s -> [ Mach.Ncall s ]
  | Vm.Isa.Callr r -> [ Mach.Ncallr r ]
  | Vm.Isa.Rjr -> [ Mach.Nret ]
  | Vm.Isa.Enter k -> [ Mach.Naddsp (-k) ]
  | Vm.Isa.Exit k -> [ Mach.Naddsp k ]
  | Vm.Isa.Spill (r, off) -> [ Mach.Nmov (Vm.Isa.W, Mach.Mem (Vm.Isa.sp, off), Mach.Reg r) ]
  | Vm.Isa.Reload (r, off) -> [ Mach.Nmov (Vm.Isa.W, Mach.Reg r, Mach.Mem (Vm.Isa.sp, off)) ]
  | Vm.Isa.Label l -> [ Mach.Nlabel l ]

let compile_func (f : Vm.Isa.vfunc) : Mach.nfunc =
  { Mach.name = f.Vm.Isa.name; code = List.concat_map compile_instr f.Vm.Isa.code }

let compile_program (p : Vm.Isa.vprogram) : Mach.nprogram =
  { Mach.globals = p.Vm.Isa.globals; funcs = List.map compile_func p.Vm.Isa.funcs }

let expansion_bytes_x86 i =
  List.fold_left (fun a n -> a + Mach.encoded_size n) 0 (compile_instr i)

let expansion_bytes_ppc i =
  List.fold_left (fun a n -> a + Mach.ppc_size n) 0 (compile_instr i)
