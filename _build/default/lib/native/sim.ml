exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type result = { exit_code : int; output : string; instrs : int; cycles : int }

let norm v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

type frame = { flat : Mach.ninstr array; label_of : (string, int) Hashtbl.t }

let prepare (f : Mach.nfunc) =
  let flat = Array.of_list f.Mach.code in
  let label_of = Hashtbl.create 8 in
  Array.iteri
    (fun i ins ->
      match ins with Mach.Nlabel l -> Hashtbl.replace label_of l i | _ -> ())
    flat;
  { flat; label_of }

let run ?(mem_size = 1 lsl 22) ?(input = "") ?(fuel = 400_000_000)
    ?(entry = "main") ?(on_instr = fun (_ : int) (_ : int) -> ())
    (p : Mach.nprogram) : result =
  let mem = Bytes.make mem_size '\000' in
  (* globals: same layout as the VM interpreter *)
  let vm_view = { Vm.Isa.globals = p.Mach.globals; funcs = [] } in
  let globals, _ = Vm.Layout.globals_table vm_view in
  List.iter
    (fun (name, _, init) ->
      match init with
      | None -> ()
      | Some bytes ->
        let base = Hashtbl.find globals name in
        List.iteri
          (fun i b -> Bytes.set mem (base + i) (Char.chr (b land 0xff)))
          bytes)
    p.Mach.globals;
  let funcs = Array.of_list p.Mach.funcs in
  let frames = Array.map prepare funcs in
  let fidx_of_name = Hashtbl.create 32 in
  Array.iteri (fun i f -> Hashtbl.add fidx_of_name f.Mach.name i) funcs;
  let addr_of_sym name =
    match Hashtbl.find_opt fidx_of_name name with
    | Some i -> Vm.Layout.func_address i
    | None -> (
      match Hashtbl.find_opt globals name with
      | Some a -> a
      | None -> fail "unresolved symbol %s" name)
  in
  let regs = Array.make Vm.Isa.num_regs 0 in
  regs.(Vm.Isa.sp) <- mem_size - 16;
  let output = Buffer.create 256 in
  let in_pos = ref 0 in
  let instrs = ref 0 in
  let cycles = ref 0 in
  let check_addr a n =
    if a < 0 || a + n > mem_size then fail "memory access out of range: %d" a
  in
  let load w a =
    match w with
    | Vm.Isa.B ->
      check_addr a 1;
      let v = Char.code (Bytes.get mem a) in
      if v land 0x80 <> 0 then v - 0x100 else v
    | Vm.Isa.H ->
      check_addr a 2;
      let v =
        Char.code (Bytes.get mem a) lor (Char.code (Bytes.get mem (a + 1)) lsl 8)
      in
      if v land 0x8000 <> 0 then v - 0x10000 else v
    | Vm.Isa.W ->
      check_addr a 4;
      norm
        (Char.code (Bytes.get mem a)
        lor (Char.code (Bytes.get mem (a + 1)) lsl 8)
        lor (Char.code (Bytes.get mem (a + 2)) lsl 16)
        lor (Char.code (Bytes.get mem (a + 3)) lsl 24))
  in
  let store w a v =
    match w with
    | Vm.Isa.B ->
      check_addr a 1;
      Bytes.set mem a (Char.chr (v land 0xff))
    | Vm.Isa.H ->
      check_addr a 2;
      Bytes.set mem a (Char.chr (v land 0xff));
      Bytes.set mem (a + 1) (Char.chr ((v asr 8) land 0xff))
    | Vm.Isa.W ->
      check_addr a 4;
      Bytes.set mem a (Char.chr (v land 0xff));
      Bytes.set mem (a + 1) (Char.chr ((v asr 8) land 0xff));
      Bytes.set mem (a + 2) (Char.chr ((v asr 16) land 0xff));
      Bytes.set mem (a + 3) (Char.chr ((v asr 24) land 0xff))
  in
  let read_operand w = function
    | Mach.Reg r -> regs.(r)
    | Mach.Imm v -> norm v
    | Mach.Mem (b, d) -> load w (regs.(b) + d)
  in
  let alu op a b =
    match op with
    | Vm.Isa.Add -> norm (a + b)
    | Vm.Isa.Sub -> norm (a - b)
    | Vm.Isa.Mul -> norm (a * b)
    | Vm.Isa.Div -> if b = 0 then fail "division by zero" else norm (a / b)
    | Vm.Isa.Mod -> if b = 0 then fail "modulo by zero" else norm (a mod b)
    | Vm.Isa.And -> norm (a land b)
    | Vm.Isa.Or -> norm (a lor b)
    | Vm.Isa.Xor -> norm (a lxor b)
    | Vm.Isa.Shl -> norm (a lsl (b land 31))
    | Vm.Isa.Shr -> norm (a asr (b land 31))
  in
  let builtin name =
    match name with
    | "putchar" ->
      Buffer.add_char output (Char.chr (regs.(0) land 0xff));
      regs.(0) <- regs.(0) land 0xff
    | "getchar" ->
      if !in_pos < String.length input then begin
        regs.(0) <- Char.code input.[!in_pos];
        incr in_pos
      end
      else regs.(0) <- -1
    | "print_int" -> Buffer.add_string output (string_of_int regs.(0))
    | "abort" -> fail "abort called"
    | _ -> fail "unknown builtin %s" name
  in
  let entry_idx =
    match Hashtbl.find_opt fidx_of_name entry with
    | Some i -> i
    | None -> fail "entry function %s not found" entry
  in
  let call_stack = ref [] in
  let fidx = ref entry_idx in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    if !instrs >= fuel then fail "fuel exhausted after %d instructions" !instrs;
    let frame = frames.(!fidx) in
    if !pc >= Array.length frame.flat then
      fail "%s: fell off the end" funcs.(!fidx).Mach.name;
    let ins = frame.flat.(!pc) in
    on_instr !fidx !pc;
    incr instrs;
    cycles := !cycles + Mach.cycles ins;
    incr pc;
    let branch l =
      match Hashtbl.find_opt frame.label_of l with
      | Some i -> pc := i
      | None -> fail "undefined label %s" l
    in
    let do_call_idx ti =
      call_stack := (!fidx, !pc) :: !call_stack;
      fidx := ti;
      pc := 0
    in
    match ins with
    | Mach.Nlabel _ -> ()
    | Mach.Nmov (w, dst, src) -> (
      let v = read_operand w src in
      match dst with
      | Mach.Reg r -> regs.(r) <- v
      | Mach.Mem (b, d) -> store w (regs.(b) + d) v
      | Mach.Imm _ -> fail "store to immediate")
    | Mach.Nlea (r, s) -> regs.(r) <- addr_of_sym s
    | Mach.Nalu (op, rd, src) -> regs.(rd) <- alu op regs.(rd) (read_operand Vm.Isa.W src)
    | Mach.Nneg r -> regs.(r) <- norm (-regs.(r))
    | Mach.Nnot r -> regs.(r) <- norm (lnot regs.(r))
    | Mach.Nsext (Vm.Isa.B, r) ->
      let v = regs.(r) land 0xff in
      regs.(r) <- (if v land 0x80 <> 0 then v - 0x100 else v)
    | Mach.Nsext (Vm.Isa.H, r) ->
      let v = regs.(r) land 0xffff in
      regs.(r) <- (if v land 0x8000 <> 0 then v - 0x10000 else v)
    | Mach.Nsext (Vm.Isa.W, _) -> ()
    | Mach.Ncmpbr (rel, r, src, l) ->
      if Vm.Isa.eval_rel rel regs.(r) (read_operand Vm.Isa.W src) then branch l
    | Mach.Njmp l -> branch l
    | Mach.Ncall s -> (
      match Hashtbl.find_opt fidx_of_name s with
      | Some ti -> do_call_idx ti
      | None ->
        if List.mem s Vm.Isa.builtins then builtin s
        else fail "call to unknown function %s" s)
    | Mach.Ncallr r -> (
      match Vm.Layout.func_index_of_address regs.(r) with
      | Some ti when ti < Array.length funcs -> do_call_idx ti
      | _ -> fail "indirect call to non-function address %d" regs.(r))
    | Mach.Nret -> (
      match !call_stack with
      | (rf, ri) :: rest ->
        call_stack := rest;
        fidx := rf;
        pc := ri
      | [] -> running := false)
    | Mach.Naddsp v -> regs.(Vm.Isa.sp) <- regs.(Vm.Isa.sp) + v
  done;
  { exit_code = regs.(0); output = Buffer.contents output; instrs = !instrs;
    cycles = !cycles }
