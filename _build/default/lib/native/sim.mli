(** Execution engine for the x86-like native target.

    Same memory model and calling convention as [Vm.Interp] (globals from
    [Vm.Layout.data_base], stack at the top of memory, args in registers
    0–5, result in 0) so that native code compiled from a VM program is
    observationally equivalent to interpreting the VM program — the
    equivalence the test suite checks. Returns both an instruction count
    and a modelled cycle count ({!Mach.cycles}), the repo's stand-in for
    the paper's Pentium timings. *)

exception Runtime_error of string

type result = {
  exit_code : int;
  output : string;
  instrs : int;    (** native instructions retired *)
  cycles : int;    (** modelled cycles *)
}

val run :
  ?mem_size:int ->
  ?input:string ->
  ?fuel:int ->
  ?entry:string ->
  ?on_instr:(int -> int -> unit) ->
  Mach.nprogram ->
  result
(** @raise Runtime_error on traps (see [Vm.Interp.run]). [on_instr]
    fires before each retired instruction with (function index,
    instruction index) — the instruction-cache scenario's fetch trace. *)
