(** VM → native compiler (the back end of the BRISC JIT and the producer
    of the "Visual C++" native baseline).

    Maps OmniVM instructions to the x86-like target with the CISC
    peepholes a simple native compiler would apply: ALU-immediate forms
    become [op reg, imm]; two-address constraints are met with a [mov]
    only when source and destination differ; [enter]/[exit] become stack
    adjusts; [spill]/[reload] become [sp]-relative moves; compare-and-
    branch pairs are already fused in the VM ISA and stay fused. *)

val compile_instr : Vm.Isa.instr -> Mach.ninstr list
(** Native expansion of one VM instruction (used per-dictionary-entry by
    the BRISC JIT and by the W cost model). *)

val compile_func : Vm.Isa.vfunc -> Mach.nfunc
val compile_program : Vm.Isa.vprogram -> Mach.nprogram

val expansion_bytes_x86 : Vm.Isa.instr -> int
(** Native bytes {!compile_instr} produces for this instruction. *)

val expansion_bytes_ppc : Vm.Isa.instr -> int
(** Bytes on the PowerPC-like target (see {!Mach.ppc_size}). *)
