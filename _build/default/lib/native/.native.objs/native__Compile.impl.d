lib/native/compile.ml: List Mach Vm
