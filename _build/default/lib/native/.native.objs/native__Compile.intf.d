lib/native/compile.mli: Mach Vm
