lib/native/sim.ml: Array Buffer Bytes Char Hashtbl List Mach Printf String Vm
