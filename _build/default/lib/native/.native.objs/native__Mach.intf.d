lib/native/mach.mli: Vm
