lib/native/sim.mli: Mach
