lib/native/sparc.ml: Buffer Char Hashtbl List Vm
