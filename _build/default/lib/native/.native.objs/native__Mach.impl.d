lib/native/mach.ml: Buffer Char Hashtbl List Printf String Vm
