lib/native/sparc.mli: Vm
