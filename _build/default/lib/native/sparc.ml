let fits13 v = v >= -4096 && v <= 4095

let words_of_instr (i : Vm.Isa.instr) =
  match i with
  | Vm.Isa.Label _ -> 0
  | Vm.Isa.Li (_, v) -> if fits13 v then 1 else 2 (* mov / sethi+or *)
  | Vm.Isa.La _ -> 2 (* sethi+or of an absolute address *)
  | Vm.Isa.Ld (_, _, d, _) | Vm.Isa.St (_, _, d, _) -> if fits13 d then 1 else 3
  | Vm.Isa.Ldx _ | Vm.Isa.Stx _ -> 1
  | Vm.Isa.Mov _ -> 1
  | Vm.Isa.Alu _ -> 1
  | Vm.Isa.Alui (_, _, _, v) -> if fits13 v then 1 else 3
  | Vm.Isa.Neg _ | Vm.Isa.Not _ -> 1
  | Vm.Isa.Sext _ -> 2 (* sll+sra *)
  | Vm.Isa.Br _ -> 2 (* cmp + bcc (delay slot filled) *)
  | Vm.Isa.Bri (_, _, v, _) -> if fits13 v then 2 else 4
  | Vm.Isa.Jmp _ -> 1
  | Vm.Isa.Call _ -> 1
  | Vm.Isa.Callr _ -> 1 (* jmpl *)
  | Vm.Isa.Rjr -> 1 (* retl *)
  | Vm.Isa.Enter _ | Vm.Isa.Exit _ -> 1 (* save/restore-style sp adjust *)
  | Vm.Isa.Spill _ | Vm.Isa.Reload _ -> 1

let program_size (p : Vm.Isa.vprogram) =
  4
  * List.fold_left
      (fun acc f ->
        acc + List.fold_left (fun a i -> a + words_of_instr i) 0 f.Vm.Isa.code)
      0 p.Vm.Isa.funcs

(* Word layout (op:6 | rd:5 | rs1:5 | rs2-or-imm13:16) — not a real SPARC
   bit layout, but the same field structure and alignment, which is what
   matters for the byte-level compressibility of the baseline. *)

let opnum (i : Vm.Isa.instr) =
  match i with
  | Vm.Isa.Ld (Vm.Isa.B, _, _, _) -> 1
  | Vm.Isa.Ld (Vm.Isa.H, _, _, _) -> 2
  | Vm.Isa.Ld (Vm.Isa.W, _, _, _) -> 3
  | Vm.Isa.St (Vm.Isa.B, _, _, _) -> 4
  | Vm.Isa.St (Vm.Isa.H, _, _, _) -> 5
  | Vm.Isa.St (Vm.Isa.W, _, _, _) -> 6
  | Vm.Isa.Ldx _ -> 7
  | Vm.Isa.Stx _ -> 8
  | Vm.Isa.Li _ -> 9
  | Vm.Isa.La _ -> 10
  | Vm.Isa.Mov _ -> 11
  | Vm.Isa.Alu (op, _, _, _) | Vm.Isa.Alui (op, _, _, _) -> (
    12
    + match op with
      | Vm.Isa.Add -> 0 | Vm.Isa.Sub -> 1 | Vm.Isa.Mul -> 2 | Vm.Isa.Div -> 3
      | Vm.Isa.Mod -> 4 | Vm.Isa.And -> 5 | Vm.Isa.Or -> 6 | Vm.Isa.Xor -> 7
      | Vm.Isa.Shl -> 8 | Vm.Isa.Shr -> 9)
  | Vm.Isa.Neg _ -> 22
  | Vm.Isa.Not _ -> 23
  | Vm.Isa.Sext _ -> 24
  | Vm.Isa.Br (rel, _, _, _) | Vm.Isa.Bri (rel, _, _, _) -> (
    25
    + match rel with
      | Vm.Isa.Eq -> 0 | Vm.Isa.Ne -> 1 | Vm.Isa.Lt -> 2 | Vm.Isa.Le -> 3
      | Vm.Isa.Gt -> 4 | Vm.Isa.Ge -> 5)
  | Vm.Isa.Jmp _ -> 31
  | Vm.Isa.Call _ -> 32
  | Vm.Isa.Callr _ -> 33
  | Vm.Isa.Rjr -> 34
  | Vm.Isa.Enter _ -> 35
  | Vm.Isa.Exit _ -> 36
  | Vm.Isa.Spill _ -> 37
  | Vm.Isa.Reload _ -> 38
  | Vm.Isa.Label _ -> 0

let encode_program (p : Vm.Isa.vprogram) =
  let buf = Buffer.create 4096 in
  let word op rd rs1 low16 =
    let w =
      ((op land 0x3f) lsl 26)
      lor ((rd land 0x1f) lsl 21)
      lor ((rs1 land 0x1f) lsl 16)
      lor (low16 land 0xffff)
    in
    (* big-endian like SPARC *)
    Buffer.add_char buf (Char.chr ((w lsr 24) land 0xff));
    Buffer.add_char buf (Char.chr ((w lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((w lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (w land 0xff))
  in
  let sethi_or rd v =
    word 60 rd 0 ((v asr 16) land 0xffff);
    word 61 rd rd (v land 0xffff)
  in
  (* label word-offsets per function for branch displacement realism *)
  List.iter
    (fun f ->
      let offs = Hashtbl.create 8 in
      let pos = ref 0 in
      List.iter
        (fun i ->
          (match i with Vm.Isa.Label l -> Hashtbl.replace offs l !pos | _ -> ());
          pos := !pos + words_of_instr i)
        f.Vm.Isa.code;
      let pc = ref 0 in
      let target l = try Hashtbl.find offs l - !pc with Not_found -> 0 in
      List.iter
        (fun i ->
          let op = opnum i in
          (match i with
          | Vm.Isa.Label _ -> ()
          | Vm.Isa.Li (rd, v) -> if fits13 v then word op rd 0 v else sethi_or rd v
          | Vm.Isa.La (rd, _) -> sethi_or rd 0x1000
          | Vm.Isa.Ld (_, rd, d, rs) | Vm.Isa.St (_, rd, d, rs) ->
            if fits13 d then word op rd rs d
            else begin
              sethi_or 1 d;
              word op rd rs 1
            end
          | Vm.Isa.Ldx (_, rd, rs) | Vm.Isa.Stx (_, rd, rs) -> word op rd rs 0
          | Vm.Isa.Mov (rd, rs) -> word op rd rs 0
          | Vm.Isa.Alu (_, rd, a, b) -> word op rd a b
          | Vm.Isa.Alui (_, rd, a, v) ->
            if fits13 v then word op rd a v
            else begin
              sethi_or 1 v;
              word op rd a 1
            end
          | Vm.Isa.Neg (rd, rs) | Vm.Isa.Not (rd, rs) -> word op rd rs 0
          | Vm.Isa.Sext (_, rd, rs) ->
            word op rd rs 24;
            word op rd rd 24
          | Vm.Isa.Br (_, a, b, l) ->
            word 39 a b 0;
            word op 0 0 (target l)
          | Vm.Isa.Bri (_, a, v, l) ->
            if fits13 v then begin
              word 39 a 0 v;
              word op 0 0 (target l)
            end
            else begin
              sethi_or 1 v;
              word 39 a 1 0;
              word op 0 0 (target l)
            end
          | Vm.Isa.Jmp l -> word op 0 0 (target l)
          | Vm.Isa.Call _ -> word op 15 0 0
          | Vm.Isa.Callr r -> word op 15 r 0
          | Vm.Isa.Rjr -> word op 0 15 0
          | Vm.Isa.Enter k -> word op 14 14 (-k)
          | Vm.Isa.Exit k -> word op 14 14 k
          | Vm.Isa.Spill (r, off) | Vm.Isa.Reload (r, off) -> word op r 14 off);
          pc := !pc + words_of_instr i)
        f.Vm.Isa.code)
    p.Vm.Isa.funcs;
  Buffer.contents buf
