type operand = Reg of int | Imm of int | Mem of int * int

type ninstr =
  | Nmov of Vm.Isa.width * operand * operand
  | Nlea of int * string
  | Nalu of Vm.Isa.aluop * int * operand
  | Nneg of int
  | Nnot of int
  | Nsext of Vm.Isa.width * int
  | Ncmpbr of Vm.Isa.relop * int * operand * string
  | Njmp of string
  | Ncall of string
  | Ncallr of int
  | Nret
  | Naddsp of int
  | Nlabel of string

type nfunc = { name : string; code : ninstr list }

type nprogram = {
  globals : (string * int * int list option) list;
  funcs : nfunc list;
}

let disp_bytes d = if d = 0 then 0 else if d >= -128 && d <= 127 then 1 else 4
let imm_bytes v = if v >= -128 && v <= 127 then 1 else 4

let operand_extra = function
  | Reg _ -> 0
  | Imm v -> imm_bytes v
  | Mem (_, d) -> disp_bytes d

(* opcode byte + modrm byte + operand extras, in the x86 spirit *)
let encoded_size i =
  match i with
  | Nlabel _ -> 0
  | Nmov (_, a, b) -> 2 + operand_extra a + operand_extra b
  | Nlea _ -> 5
  | Nalu (_, _, src) -> 2 + operand_extra src
  | Nneg _ | Nnot _ -> 2
  | Nsext (_, _) -> 3
  | Ncmpbr (_, _, src, _) -> 2 + operand_extra src + 2 (* cmp + jcc rel8 *)
  | Njmp _ -> 2
  | Ncall _ -> 5
  | Ncallr _ -> 2
  | Nret -> 1
  | Naddsp v -> 2 + imm_bytes v

let func_size f = List.fold_left (fun a i -> a + encoded_size i) 0 f.code

let program_size p = List.fold_left (fun a f -> a + func_size f) 0 p.funcs

let cycles = function
  | Nlabel _ -> 0
  | Nmov (_, Mem _, _) | Nmov (_, _, Mem _) -> 2
  | Nmov _ -> 1
  | Nlea _ -> 1
  | Nalu (Vm.Isa.Mul, _, _) -> 4
  | Nalu ((Vm.Isa.Div | Vm.Isa.Mod), _, _) -> 20
  | Nalu (_, _, Mem _) -> 2
  | Nalu _ -> 1
  | Nneg _ | Nnot _ | Nsext _ -> 1
  | Ncmpbr (_, _, Mem _, _) -> 3
  | Ncmpbr _ -> 2
  | Njmp _ -> 1
  | Ncall _ | Ncallr _ | Nret -> 4
  | Naddsp _ -> 1

let ppc_size = function
  | Nlabel _ -> 0
  | Nmov (_, Reg _, Imm v) -> if imm_bytes v = 1 then 4 else 8 (* li / lis+ori *)
  | Nmov (_, Reg _, Reg _) -> 4
  | Nmov (_, Reg _, Mem (_, d)) | Nmov (_, Mem (_, d), Reg _) ->
    if disp_bytes d <= 1 then 4 else 8
  | Nmov _ -> 8
  | Nlea _ -> 8 (* lis+ori *)
  | Nalu (_, _, Imm v) -> if imm_bytes v = 1 then 4 else 12
  | Nalu (_, _, Mem _) -> 8 (* load + op *)
  | Nalu _ -> 4
  | Nneg _ | Nnot _ | Nsext _ -> 4
  | Ncmpbr _ -> 8 (* cmp + bc *)
  | Njmp _ -> 4
  | Ncall _ -> 4
  | Ncallr _ -> 8 (* mtctr + bctrl *)
  | Nret -> 4
  | Naddsp _ -> 4

let reg_name r = Vm.Isa.reg_name r

let operand_to_string = function
  | Reg r -> reg_name r
  | Imm v -> Printf.sprintf "$%d" v
  | Mem (b, d) -> Printf.sprintf "%d(%s)" d (reg_name b)

let instr_to_string = function
  | Nmov (w, a, b) ->
    Printf.sprintf "mov.%s %s,%s" (Vm.Isa.width_name w) (operand_to_string a)
      (operand_to_string b)
  | Nlea (r, s) -> Printf.sprintf "lea %s,%s" (reg_name r) s
  | Nalu (op, rd, src) ->
    Printf.sprintf "%s %s,%s" (Vm.Isa.aluop_name op) (reg_name rd)
      (operand_to_string src)
  | Nneg r -> Printf.sprintf "neg %s" (reg_name r)
  | Nnot r -> Printf.sprintf "not %s" (reg_name r)
  | Nsext (w, r) -> Printf.sprintf "movsx.%s %s" (Vm.Isa.width_name w) (reg_name r)
  | Ncmpbr (rel, r, src, l) ->
    Printf.sprintf "cmp%s %s,%s,$%s" (Vm.Isa.relop_name rel) (reg_name r)
      (operand_to_string src) l
  | Njmp l -> Printf.sprintf "jmp $%s" l
  | Ncall s -> Printf.sprintf "call %s" s
  | Ncallr r -> Printf.sprintf "call *%s" (reg_name r)
  | Nret -> "ret"
  | Naddsp v -> Printf.sprintf "addsp %d" v
  | Nlabel l -> Printf.sprintf "$%s:" l

let program_to_string p =
  String.concat "\n"
    (List.map
       (fun f ->
         f.name ^ ":\n"
         ^ String.concat "\n"
             (List.map (fun i -> "  " ^ instr_to_string i) f.code))
       p.funcs)
  ^ "\n"

(* ---- byte image ----

   Emission is two-pass: first compute instruction offsets to resolve
   labels to pc-relative displacements, then emit. Encoded operands:
   ModRM-style byte packs the two register/mode selectors; displacements
   and immediates are 1 or 4 bytes (little-endian). *)

let encode_program p =
  let buf = Buffer.create 4096 in
  let emit_byte b = Buffer.add_char buf (Char.chr (b land 0xff)) in
  let emit_int32 v =
    emit_byte v;
    emit_byte (v asr 8);
    emit_byte (v asr 16);
    emit_byte (v asr 24)
  in
  let emit_value v = if v >= -128 && v <= 127 then emit_byte v else emit_int32 v in
  (* global symbol addresses for lea/call *)
  let sym_addr = Hashtbl.create 64 in
  let next = ref 0x1000 in
  List.iter
    (fun (n, sz, _) ->
      Hashtbl.replace sym_addr n !next;
      next := !next + ((max 1 sz + 3) / 4 * 4))
    p.globals;
  List.iteri
    (fun i f -> Hashtbl.replace sym_addr f.name (8 * (i + 1)))
    p.funcs;
  let addr_of s = match Hashtbl.find_opt sym_addr s with Some a -> a | None -> 0 in
  let opcode_of = function
    | Nmov (Vm.Isa.B, _, _) -> 0x10
    | Nmov (Vm.Isa.H, _, _) -> 0x11
    | Nmov (Vm.Isa.W, _, _) -> 0x12
    | Nlea _ -> 0x13
    | Nalu (op, _, _) -> (
      0x20
      + match op with
        | Vm.Isa.Add -> 0 | Vm.Isa.Sub -> 1 | Vm.Isa.Mul -> 2 | Vm.Isa.Div -> 3
        | Vm.Isa.Mod -> 4 | Vm.Isa.And -> 5 | Vm.Isa.Or -> 6 | Vm.Isa.Xor -> 7
        | Vm.Isa.Shl -> 8 | Vm.Isa.Shr -> 9)
    | Nneg _ -> 0x30
    | Nnot _ -> 0x31
    | Nsext (Vm.Isa.B, _) -> 0x32
    | Nsext (Vm.Isa.H, _) -> 0x33
    | Nsext (Vm.Isa.W, _) -> 0x34
    | Ncmpbr (rel, _, _, _) -> (
      0x40
      + match rel with
        | Vm.Isa.Eq -> 0 | Vm.Isa.Ne -> 1 | Vm.Isa.Lt -> 2 | Vm.Isa.Le -> 3
        | Vm.Isa.Gt -> 4 | Vm.Isa.Ge -> 5)
    | Njmp _ -> 0x50
    | Ncall _ -> 0x51
    | Ncallr _ -> 0x52
    | Nret -> 0x53
    | Naddsp _ -> 0x54
    | Nlabel _ -> 0x00
  in
  let reg_of = function Reg r -> r | Imm _ -> 0 | Mem (b, _) -> b in
  (* The image is a compression corpus (it is never decoded back), so the
     ModRM-style byte packs the two 4-bit register selectors and leaves
     operand modes implicit in the opcode choice; emitted byte counts
     match [encoded_size] exactly. *)
  let modrm a b = emit_byte (((a land 0xf) lsl 4) lor (b land 0xf)) in
  let operand_payload = function
    | Reg _ -> ()
    | Imm v -> emit_value v
    | Mem (_, d) -> if d <> 0 then emit_value d
  in
  List.iter
    (fun f ->
      (* label offsets within the function, by encoded size *)
      let offs = Hashtbl.create 8 in
      let pos = ref 0 in
      List.iter
        (fun i ->
          (match i with Nlabel l -> Hashtbl.replace offs l !pos | _ -> ());
          pos := !pos + encoded_size i)
        f.code;
      let pc = ref 0 in
      List.iter
        (fun i ->
          let here = !pc + encoded_size i in
          (match i with
          | Nlabel _ -> ()
          | _ -> (
            emit_byte (opcode_of i);
            match i with
            | Nmov (_, a, b) ->
              modrm (reg_of a) (reg_of b);
              operand_payload a;
              operand_payload b
            | Nlea (r, s) ->
              (* counted as 5 bytes: opcode + reg/abs32 *)
              modrm r 0;
              emit_byte (addr_of s land 0xff);
              emit_byte ((addr_of s asr 8) land 0xff);
              emit_byte ((addr_of s asr 16) land 0xff)
            | Nalu (_, rd, src) ->
              modrm rd (reg_of src);
              operand_payload src
            | Nneg r | Nnot r | Ncallr r -> modrm r 0
            | Nsext (w, r) ->
              modrm r 0;
              emit_byte (match w with Vm.Isa.B -> 0 | Vm.Isa.H -> 1 | Vm.Isa.W -> 2)
            | Ncmpbr (_, r, src, l) ->
              modrm r (reg_of src);
              operand_payload src;
              let target = try Hashtbl.find offs l with Not_found -> 0 in
              let rel = target - here in
              emit_byte rel;
              emit_byte (rel asr 8)
            | Njmp l ->
              let target = try Hashtbl.find offs l with Not_found -> 0 in
              emit_byte (target - here)
            | Ncall s -> emit_int32 (addr_of s)
            | Nret -> ()
            | Naddsp v ->
              modrm 16 0;
              emit_value v
            | Nlabel _ -> ()));
          pc := here)
        f.code)
    p.funcs;
  Buffer.contents buf
