(** SPARC-like conventional baseline for the wire-format comparison (§3).

    The paper's first table compares wire-format sizes against
    "conventional SPARC code segments", uncompressed and gzipped. This
    module produces a fixed 32-bit-word RISC image of a VM program in the
    SPARC mould: one word per simple instruction, two for large-immediate
    materializations ([sethi]/[or] pairs) and symbol addresses, two for
    compare-and-branch (cmp + bcc). *)

val words_of_instr : Vm.Isa.instr -> int
(** 32-bit words this instruction occupies. *)

val program_size : Vm.Isa.vprogram -> int
(** Code bytes (words x 4). *)

val encode_program : Vm.Isa.vprogram -> string
(** The byte image (for the "gzipped SPARC" baseline). Each word packs
    opcode and register fields SPARC-style: op in the top bits, rd/rs1 in
    5-bit fields, 13-bit signed immediates when they fit. *)
