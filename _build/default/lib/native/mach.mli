(** The synthetic native target ("x86-like").

    The paper measures against Pentium code produced by Visual C++ 5.0
    and JITs BRISC to x86. We have no x86 hardware to run, so the repo
    defines a Pentium-flavoured CISC: variable-length encoding (opcode +
    ModRM-style register byte + 1- or 4-byte displacements/immediates),
    two-address ALU ops, memory operands on ALU instructions, and a
    hardware return stack ([call]/[ret]). Its encoder gives realistic
    native code sizes; {!Sim} executes it with a simple cycle model. See
    DESIGN.md ("Substitutions") for why this preserves the paper's
    comparisons. *)

type operand =
  | Reg of int              (** native registers mirror VM registers 0–17 *)
  | Imm of int
  | Mem of int * int        (** [Mem (base, disp)] = [disp(base)] *)

type ninstr =
  | Nmov of Vm.Isa.width * operand * operand
      (** move; at most one side a memory operand *)
  | Nlea of int * string                   (** address of symbol -> reg *)
  | Nalu of Vm.Isa.aluop * int * operand      (** two-address: [rd op= src] *)
  | Nneg of int
  | Nnot of int
  | Nsext of Vm.Isa.width * int
  | Ncmpbr of Vm.Isa.relop * int * operand * string  (** fused compare+branch *)
  | Njmp of string
  | Ncall of string
  | Ncallr of int
  | Nret
  | Naddsp of int                          (** stack-pointer adjust *)
  | Nlabel of string

type nfunc = { name : string; code : ninstr list }

type nprogram = {
  globals : (string * int * int list option) list;
  funcs : nfunc list;
}

val encoded_size : ninstr -> int
(** Bytes under the x86-like encoding (0 for labels). *)

val func_size : nfunc -> int
val program_size : nprogram -> int

val encode_program : nprogram -> string
(** Flat byte image of all code segments (for compression baselines:
    "gzipped x86"). Labels/symbols are resolved to pc-relative /
    absolute offsets before encoding. *)

val cycles : ninstr -> int
(** Cost model used by {!Sim}: 1 for register ALU/moves, 2 for memory
    operands, 4 for multiply, 20 for divide, 2 for taken-or-not
    branches, 4 for call/ret. *)

val instr_to_string : ninstr -> string
val program_to_string : nprogram -> string

val ppc_size : ninstr -> int
(** Bytes the same operation would take on a PowerPC-601-like fixed
    32-bit RISC (used for the paper's W = average of Pentium and PowerPC
    decompressor table sizes). *)
