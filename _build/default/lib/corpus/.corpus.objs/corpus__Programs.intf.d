lib/corpus/programs.mli:
