lib/corpus/gen.ml: Array Buffer List Printf Programs String Support
