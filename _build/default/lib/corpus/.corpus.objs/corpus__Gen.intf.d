lib/corpus/gen.mli: Programs
