(** Hand-written MiniC benchmark programs.

    Each is a complete, runnable program with a known-good expected
    output, so the same corpus drives correctness tests (all four
    execution engines must agree), compression benchmarks, and the
    delivery-scenario models. *)

type entry = {
  name : string;
  description : string;
  source : string;        (** MiniC source text *)
  input : string;         (** stdin for the run *)
}

val wc : entry
(** Word/line/character count — the paper's smallest benchmark. *)

val sieve : entry
val qsort : entry
val queens : entry
val matmul : entry
val strlib : entry
val calc : entry
(** Recursive-descent expression parser and evaluator — the
    compiler-shaped workload. *)

val crc : entry
val rle : entry
val life : entry
val hanoi : entry
val huffman : entry
(** Builds a Huffman code in MiniC — the compression-shaped workload. *)

val bf : entry
(** A Brainfuck interpreter — the interpreter-shaped workload. *)

val mixhash : entry

val all : entry list
(** Every hand-written program, smallest first. *)

val find : string -> entry option
