(** Deterministic generator of large, realistic MiniC programs.

    The paper's big inputs (lcc at ~315 KB and gcc at ~1.4 MB of SPARC
    code) are unavailable, so large corpus points are synthesized: many
    functions with lcc-like statement mixes (local arithmetic, array and
    pointer traffic, branches, loops, calls to earlier functions), plus a
    driver [main] that calls a sample of them and prints a checksum.
    Generation is seeded and reproducible; the same seed always produces
    the same source text.

    [bias16] skews literals and scalar types toward 16-bit quantities,
    modelling the paper's observation that Word97's unusually many 16-bit
    operations compress worse. *)

type profile = {
  functions : int;       (** number of generated functions *)
  seed : int64;
  bias16 : bool;
}

val small : profile

val medium : profile
(** lcc-scale stand-in. *)

val large : profile
(** gcc-scale stand-in. *)

val bigapp16 : profile
(** Word97-like 16-bit-heavy variant. *)

val generate : profile -> Programs.entry
(** The generated program always runs to completion (bounded loops, safe
    indices, non-zero divisors) and returns a deterministic checksum. *)
