type entry = {
  name : string;
  description : string;
  source : string;
  input : string;
}

let wc =
  {
    name = "wc";
    description = "word, line and character count over stdin";
    input = "the quick brown fox\njumps over the lazy dog\nand then some more\n";
    source =
      {|
int is_space(int c) {
  return c == ' ' || c == '\n' || c == '\t' || c == '\r';
}

int main() {
  int chars = 0;
  int words = 0;
  int lines = 0;
  int in_word = 0;
  int c;
  while ((c = getchar()) != -1) {
    chars++;
    if (c == '\n') lines++;
    if (is_space(c)) {
      in_word = 0;
    } else {
      if (!in_word) words++;
      in_word = 1;
    }
  }
  print_int(lines); putchar(' ');
  print_int(words); putchar(' ');
  print_int(chars); putchar('\n');
  return 0;
}
|};
  }

let sieve =
  {
    name = "sieve";
    description = "sieve of Eratosthenes up to 1000";
    input = "";
    source =
      {|
char flags[1001];

int main() {
  int i;
  int j;
  int count = 0;
  for (i = 2; i <= 1000; i++) flags[i] = 1;
  for (i = 2; i <= 1000; i++) {
    if (flags[i]) {
      count++;
      for (j = i + i; j <= 1000; j += i) flags[j] = 0;
    }
  }
  print_int(count);
  putchar('\n');
  return count;
}
|};
  }

let qsort =
  {
    name = "qsort";
    description = "recursive quicksort over a pseudo-random array";
    input = "";
    source =
      {|
int data[500];

void swap(int *a, int *b) {
  int t = *a;
  *a = *b;
  *b = t;
}

int partition(int *arr, int lo, int hi) {
  int pivot = arr[hi];
  int i = lo - 1;
  int j;
  for (j = lo; j < hi; j++) {
    if (arr[j] <= pivot) {
      i++;
      swap(&arr[i], &arr[j]);
    }
  }
  swap(&arr[i + 1], &arr[hi]);
  return i + 1;
}

void quicksort(int *arr, int lo, int hi) {
  if (lo < hi) {
    int p = partition(arr, lo, hi);
    quicksort(arr, lo, p - 1);
    quicksort(arr, p + 1, hi);
  }
}

int main() {
  int i;
  int seed = 12345;
  for (i = 0; i < 500; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    if (seed < 0) seed = -seed;
    data[i] = seed % 10000;
  }
  quicksort(data, 0, 499);
  for (i = 1; i < 500; i++) {
    if (data[i - 1] > data[i]) { print_int(-1); return 1; }
  }
  print_int(data[0]); putchar(' ');
  print_int(data[250]); putchar(' ');
  print_int(data[499]); putchar('\n');
  return 0;
}
|};
  }

let queens =
  {
    name = "queens";
    description = "count solutions to the 8-queens problem";
    input = "";
    source =
      {|
int cols[8];
int solutions = 0;

int ok(int row, int col) {
  int i;
  for (i = 0; i < row; i++) {
    int c = cols[i];
    if (c == col) return 0;
    if (c - col == row - i) return 0;
    if (col - c == row - i) return 0;
  }
  return 1;
}

void solve(int row) {
  int col;
  if (row == 8) {
    solutions++;
    return;
  }
  for (col = 0; col < 8; col++) {
    if (ok(row, col)) {
      cols[row] = col;
      solve(row + 1);
    }
  }
}

int main() {
  solve(0);
  print_int(solutions);
  putchar('\n');
  return solutions;
}
|};
  }

let matmul =
  {
    name = "matmul";
    description = "16x16 integer matrix multiply with checksum";
    input = "";
    source =
      {|
int a[256];
int b[256];
int c[256];

void fill(int *m, int salt) {
  int i;
  for (i = 0; i < 256; i++) m[i] = (i * salt + 7) % 31 - 15;
}

void multiply(int *x, int *y, int *z, int n) {
  int i;
  int j;
  int k;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      int sum = 0;
      for (k = 0; k < n; k++) sum += x[i * n + k] * y[k * n + j];
      z[i * n + j] = sum;
    }
  }
}

int main() {
  int i;
  int check = 0;
  fill(a, 3);
  fill(b, 5);
  multiply(a, b, c, 16);
  for (i = 0; i < 256; i++) check = (check * 31 + c[i]) % 65521;
  if (check < 0) check += 65521;
  print_int(check);
  putchar('\n');
  return 0;
}
|};
  }

let strlib =
  {
    name = "strlib";
    description = "string routines: length, copy, compare, reverse, find";
    input = "";
    source =
      {|
char buf[128];
char buf2[128];

int str_len(char *s) {
  int n = 0;
  while (s[n]) n++;
  return n;
}

void str_copy(char *dst, char *src) {
  int i = 0;
  while ((dst[i] = src[i]) != 0) i++;
}

int str_cmp(char *a, char *b) {
  int i = 0;
  while (a[i] && a[i] == b[i]) i++;
  return a[i] - b[i];
}

void str_rev(char *s) {
  int i = 0;
  int j = str_len(s) - 1;
  while (i < j) {
    char t = s[i];
    s[i] = s[j];
    s[j] = t;
    i++;
    j--;
  }
}

int str_find(char *hay, char *needle) {
  int i;
  int j;
  int n = str_len(hay);
  int m = str_len(needle);
  for (i = 0; i + m <= n; i++) {
    j = 0;
    while (j < m && hay[i + j] == needle[j]) j++;
    if (j == m) return i;
  }
  return -1;
}

void print(char *s) {
  int i = 0;
  while (s[i]) { putchar(s[i]); i++; }
}

int main() {
  str_copy(buf, "the quick brown fox");
  str_copy(buf2, buf);
  if (str_cmp(buf, buf2) != 0) return 1;
  str_rev(buf);
  print(buf);
  putchar('\n');
  print_int(str_find(buf2, "brown"));
  putchar('\n');
  return str_len(buf);
}
|};
  }

let calc =
  {
    name = "calc";
    description = "recursive-descent arithmetic expression evaluator";
    input = "(1+2)*3-4/2; 10%3+2*(7-5); 100/(2+3)*4;";
    source =
      {|
char expr[256];
int pos = 0;
int nexpr = 0;

int peek_c() {
  if (pos >= nexpr) return -1;
  return expr[pos];
}

void skip_ws() {
  while (peek_c() == ' ') pos++;
}

int parse_primary() {
  int v = 0;
  skip_ws();
  if (peek_c() == '(') {
    pos++;
    v = parse_expr();
    skip_ws();
    if (peek_c() == ')') pos++;
    return v;
  }
  if (peek_c() == '-') {
    pos++;
    return -parse_primary();
  }
  while (peek_c() >= '0' && peek_c() <= '9') {
    v = v * 10 + (peek_c() - '0');
    pos++;
  }
  return v;
}

int parse_term() {
  int v = parse_primary();
  while (1) {
    skip_ws();
    int c = peek_c();
    if (c == '*') {
      pos++;
      v = v * parse_primary();
    } else if (c == '/') {
      pos++;
      int d = parse_primary();
      if (d != 0) v = v / d;
    } else if (c == '%') {
      pos++;
      int d = parse_primary();
      if (d != 0) v = v % d;
    } else {
      break;
    }
  }
  return v;
}

int parse_expr() {
  int v = parse_term();
  while (1) {
    skip_ws();
    int c = peek_c();
    if (c == '+') {
      pos++;
      v = v + parse_term();
    } else if (c == '-') {
      pos++;
      v = v - parse_term();
    } else {
      break;
    }
  }
  return v;
}

int main() {
  int c;
  int total = 0;
  while ((c = getchar()) != -1) {
    if (c == ';') {
      int v;
      pos = 0;
      v = parse_expr();
      print_int(v);
      putchar('\n');
      total += v;
      nexpr = 0;
    } else {
      if (nexpr < 255) {
        expr[nexpr] = c;
        nexpr++;
      }
    }
  }
  return total;
}
|};
  }

let crc =
  {
    name = "crc";
    description = "CRC-32-style rolling checksum over generated data";
    input = "";
    source =
      {|
int table[256];

void build_table() {
  int i;
  int j;
  for (i = 0; i < 256; i++) {
    int c = i;
    for (j = 0; j < 8; j++) {
      if (c & 1) c = (c >> 1) ^ 0x6DB88320;
      else c = c >> 1;
    }
    table[i] = c;
  }
}

int main() {
  int crc = -1;
  int i;
  build_table();
  for (i = 0; i < 4096; i++) {
    int b = (i * 131 + 17) & 255;
    crc = (crc >> 8) ^ table[(crc ^ b) & 255];
  }
  print_int(crc);
  putchar('\n');
  return 0;
}
|};
  }

let rle =
  {
    name = "rle";
    description = "run-length encode stdin and report compression";
    input = "aaaabbbcccccccddddddddddeeefgggggggggggghhhh";
    source =
      {|
char data[512];
int n = 0;

int main() {
  int c;
  int i = 0;
  int out = 0;
  while ((c = getchar()) != -1) {
    if (n < 512) {
      data[n] = c;
      n++;
    }
  }
  while (i < n) {
    int run = 1;
    while (i + run < n && data[i + run] == data[i] && run < 255) run++;
    putchar(data[i]);
    print_int(run);
    out = out + 2;
    i = i + run;
  }
  putchar('\n');
  print_int(out); putchar('/'); print_int(n); putchar('\n');
  return out;
}
|};
  }

let life =
  {
    name = "life";
    description = "Conway's Game of Life, 16x16 torus, 12 generations";
    input = "";
    source =
      {|
char grid[256];
char next[256];

int at(int r, int c) {
  return grid[((r + 16) % 16) * 16 + ((c + 16) % 16)];
}

void step() {
  int r;
  int c;
  for (r = 0; r < 16; r++) {
    for (c = 0; c < 16; c++) {
      int live = at(r-1,c-1) + at(r-1,c) + at(r-1,c+1)
               + at(r,c-1)              + at(r,c+1)
               + at(r+1,c-1) + at(r+1,c) + at(r+1,c+1);
      int self = at(r, c);
      if (self && (live == 2 || live == 3)) next[r * 16 + c] = 1;
      else if (!self && live == 3) next[r * 16 + c] = 1;
      else next[r * 16 + c] = 0;
    }
  }
  for (r = 0; r < 256; r++) grid[r] = next[r];
}

int main() {
  int g;
  int count = 0;
  int i;
  /* glider + blinker */
  grid[1 * 16 + 2] = 1;
  grid[2 * 16 + 3] = 1;
  grid[3 * 16 + 1] = 1;
  grid[3 * 16 + 2] = 1;
  grid[3 * 16 + 3] = 1;
  grid[8 * 16 + 8] = 1;
  grid[8 * 16 + 9] = 1;
  grid[8 * 16 + 10] = 1;
  for (g = 0; g < 12; g++) step();
  for (i = 0; i < 256; i++) count += grid[i];
  print_int(count);
  putchar('\n');
  return count;
}
|};
  }


let hanoi =
  {
    name = "hanoi";
    description = "towers of Hanoi, counting and checksumming moves";
    input = "";
    source =
      {|
int moves = 0;
int check = 0;

void move(int from, int to) {
  moves++;
  check = (check * 31 + from * 8 + to) % 1000003;
}

void solve(int n, int from, int to, int via) {
  if (n == 0) return;
  solve(n - 1, from, via, to);
  move(from, to);
  solve(n - 1, via, to, from);
}

int main() {
  solve(12, 0, 2, 1);
  print_int(moves);
  putchar(' ');
  print_int(check);
  putchar('\n');
  return moves & 0xFF;
}
|};
  }

let huffman =
  {
    name = "huffman";
    description = "build a Huffman code over input byte frequencies";
    input = "this is an example of a huffman tree being built from text";
    source =
      {|
int freq[64];
int left[128];
int right[128];
int weight[128];
int parent[128];
int nnodes = 0;

int new_node(int w, int l, int r) {
  weight[nnodes] = w;
  left[nnodes] = l;
  right[nnodes] = r;
  parent[nnodes] = -1;
  nnodes++;
  return nnodes - 1;
}

int pick_lightest() {
  int best = -1;
  int i;
  for (i = 0; i < nnodes; i++) {
    if (parent[i] == -1 && weight[i] > 0) {
      if (best == -1 || weight[i] < weight[best]) best = i;
    }
  }
  return best;
}

int depth_of(int n) {
  int d = 0;
  while (parent[n] != -1) {
    d++;
    n = parent[n];
  }
  return d;
}

int main() {
  int c;
  int i;
  while ((c = getchar()) != -1) {
    freq[c & 63] = freq[c & 63] + 1;
  }
  /* leaves */
  for (i = 0; i < 64; i++) {
    if (freq[i] > 0) new_node(freq[i], -1, -1);
  }
  int nleaves = nnodes;
  /* repeatedly join the two lightest live nodes */
  while (1) {
    int a = pick_lightest();
    if (a == -1) break;
    parent[a] = -2; /* temporarily claim */
    int b = pick_lightest();
    if (b == -1) { parent[a] = -1; break; }
    parent[a] = -1;
    int n = new_node(weight[a] + weight[b], a, b);
    parent[a] = n;
    parent[b] = n;
  }
  /* weighted path length = total encoded bits */
  int bits = 0;
  for (i = 0; i < nleaves; i++) bits += weight[i] * depth_of(i);
  print_int(nleaves);
  putchar(' ');
  print_int(bits);
  putchar('\n');
  return bits & 0x7F;
}
|};
  }

let bf =
  {
    name = "bf";
    description = "a Brainfuck interpreter running a small program";
    input = "";
    source =
      {|
char prog[256];
char tape[512];
int np = 0;

void emitp(char c) {
  prog[np] = c;
  np++;
}

int main() {
  int pc = 0;
  int ptr = 0;
  int steps = 0;
  int i;
  /* ++++++++[>++++++++<-]>+. prints 'A'; then a second cell count */
  for (i = 0; i < 8; i++) emitp('+');
  emitp('[');
  emitp('>');
  for (i = 0; i < 8; i++) emitp('+');
  emitp('<');
  emitp('-');
  emitp(']');
  emitp('>');
  emitp('+');
  emitp('.');
  while (pc < np && steps < 100000) {
    char op = prog[pc];
    steps++;
    if (op == '+') tape[ptr]++;
    else if (op == '-') tape[ptr]--;
    else if (op == '>') ptr = (ptr + 1) % 512;
    else if (op == '<') ptr = (ptr + 511) % 512;
    else if (op == '.') putchar(tape[ptr]);
    else if (op == '[') {
      if (tape[ptr] == 0) {
        int depth = 1;
        while (depth > 0) {
          pc++;
          if (prog[pc] == '[') depth++;
          if (prog[pc] == ']') depth--;
        }
      }
    } else if (op == ']') {
      if (tape[ptr] != 0) {
        int depth = 1;
        while (depth > 0) {
          pc--;
          if (prog[pc] == ']') depth++;
          if (prog[pc] == '[') depth--;
        }
      }
    }
    pc++;
  }
  putchar('\n');
  print_int(steps);
  putchar('\n');
  return steps & 0xFF;
}
|};
  }

let mixhash =
  {
    name = "mixhash";
    description = "avalanche-style 32-bit mixing hash over generated keys";
    input = "";
    source =
      {|
int mix(int h, int k) {
  k = k * 0xCC9E2D51;
  k = (k << 15) | ((k >> 17) & 0x7FFF);
  k = k * 0x1B873593;
  h = h ^ k;
  h = (h << 13) | ((h >> 19) & 0x1FFF);
  h = h * 5 + 0xE6546B64;
  return h;
}

int finalize(int h) {
  h = h ^ ((h >> 16) & 0xFFFF);
  h = h * 0x85EBCA6B;
  h = h ^ ((h >> 13) & 0x7FFFF);
  h = h * 0xC2B2AE35;
  h = h ^ ((h >> 16) & 0xFFFF);
  return h;
}

int buckets[64];

int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 5000; i++) {
    int h = finalize(mix(i * 2654435761, i));
    buckets[h & 63]++;
    acc ^= h;
  }
  /* bucket spread: max - min occupancy should be modest for a good mix */
  int mn = buckets[0];
  int mx = buckets[0];
  for (i = 1; i < 64; i++) {
    if (buckets[i] < mn) mn = buckets[i];
    if (buckets[i] > mx) mx = buckets[i];
  }
  print_int(mn); putchar(' ');
  print_int(mx); putchar(' ');
  print_int(acc); putchar('\n');
  return mx - mn;
}
|};
  }

let all =
  [ wc; rle; sieve; hanoi; queens; crc; life; mixhash; strlib; qsort; matmul;
    huffman; bf; calc ]

let find name = List.find_opt (fun e -> e.name = name) all
