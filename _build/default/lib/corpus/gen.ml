type profile = { functions : int; seed : int64; bias16 : bool }

let small = { functions = 8; seed = 0x5EEDL; bias16 = false }
let medium = { functions = 120; seed = 0x1CCL; bias16 = false }
let large = { functions = 600; seed = 0x9CCL; bias16 = false }
let bigapp16 = { functions = 300; seed = 0x16B17L; bias16 = true }

(* Generated program shape: a handful of global arrays and scalars, then
   [functions] two-argument functions whose bodies mix assignments,
   branches, loops and calls to earlier functions, then a driver. *)

type gctx = {
  rng : Support.Prng.t;
  buf : Buffer.t;
  bias16 : bool;
  mutable locals : string list;    (* assignable locals in scope *)
  mutable readables : string list; (* locals + live loop iterators *)
  mutable loop_depth : int;
  fidx : int;                      (* current function index *)
}

let addf ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let indent depth = String.make (2 * (depth + 1)) ' '

(* constant pools: realistic skew toward small values; bias16 pushes a
   large share into the 8..16-bit range *)
let constant ctx =
  let r = Support.Prng.int ctx.rng 100 in
  if ctx.bias16 && r < 55 then 256 + Support.Prng.int ctx.rng 32000
  else if r < 40 then Support.Prng.int ctx.rng 8
  else if r < 70 then Support.Prng.int ctx.rng 128
  else if r < 90 then Support.Prng.int ctx.rng 32768
  else Support.Prng.int ctx.rng 1000000

let leaf ctx =
  match Support.Prng.int ctx.rng 10 with
  | 0 | 1 | 2 ->
    (* local or parameter *)
    (match ctx.readables with
    | [] -> string_of_int (constant ctx)
    | ls -> List.nth ls (Support.Prng.int ctx.rng (List.length ls)))
  | 3 | 4 ->
    (match ctx.readables with
    | [] -> "gv0"
    | ls -> List.nth ls (Support.Prng.int ctx.rng (List.length ls)))
  | 5 -> Printf.sprintf "gv%d" (Support.Prng.int ctx.rng 4)
  | 6 ->
    (* array read with safe mask *)
    let arr = [| "ga"; "gb" |].(Support.Prng.int ctx.rng 2) in
    (match ctx.readables with
    | [] -> Printf.sprintf "%s[%d]" arr (Support.Prng.int ctx.rng 64)
    | ls ->
      Printf.sprintf "%s[%s & 63]" arr
        (List.nth ls (Support.Prng.int ctx.rng (List.length ls))))
  | 7 when ctx.bias16 ->
    Printf.sprintf "gs[%d]" (Support.Prng.int ctx.rng 64)
  | _ -> string_of_int (constant ctx)

let rec expr ctx depth =
  if depth <= 0 || Support.Prng.int ctx.rng 100 < 30 then leaf ctx
  else begin
    match Support.Prng.int ctx.rng 12 with
    | 0 | 1 | 2 -> Printf.sprintf "(%s + %s)" (expr ctx (depth - 1)) (expr ctx (depth - 1))
    | 3 | 4 -> Printf.sprintf "(%s - %s)" (expr ctx (depth - 1)) (expr ctx (depth - 1))
    | 5 -> Printf.sprintf "(%s * %s)" (expr ctx (depth - 1)) (leaf ctx)
    | 6 -> Printf.sprintf "(%s / %d)" (expr ctx (depth - 1)) (1 + Support.Prng.int ctx.rng 9)
    | 7 -> Printf.sprintf "(%s %% %d)" (expr ctx (depth - 1)) (2 + Support.Prng.int ctx.rng 14)
    | 8 -> Printf.sprintf "(%s & %s)" (expr ctx (depth - 1)) (leaf ctx)
    | 9 -> Printf.sprintf "(%s | %s)" (expr ctx (depth - 1)) (leaf ctx)
    | 10 -> Printf.sprintf "(%s ^ %s)" (expr ctx (depth - 1)) (leaf ctx)
    | _ ->
      let sh = Support.Prng.int ctx.rng 12 in
      let op = if Support.Prng.bool ctx.rng then "<<" else ">>" in
      Printf.sprintf "(%s %s %d)" (expr ctx (depth - 1)) op sh
  end

let cmp ctx depth =
  let op = [| "<"; "<="; ">"; ">="; "=="; "!=" |].(Support.Prng.int ctx.rng 6) in
  Printf.sprintf "%s %s %s" (expr ctx depth) op (expr ctx depth)

let rec stmt ctx depth =
  let pad = indent depth in
  match Support.Prng.int ctx.rng 20 with
  | 0 | 1 | 2 | 3 | 4 | 5 -> (
    (* assignment to a local *)
    match ctx.locals with
    | [] -> addf ctx "%sgv0 = %s;\n" pad (expr ctx 2)
    | ls ->
      let l = List.nth ls (Support.Prng.int ctx.rng (List.length ls)) in
      addf ctx "%s%s = %s;\n" pad l (expr ctx 2))
  | 6 | 7 ->
    (* array store *)
    let arr = [| "ga"; "gb" |].(Support.Prng.int ctx.rng 2) in
    let idx =
      match ctx.readables with
      | [] -> string_of_int (Support.Prng.int ctx.rng 64)
      | ls ->
        Printf.sprintf "%s & 63"
          (List.nth ls (Support.Prng.int ctx.rng (List.length ls)))
    in
    addf ctx "%s%s[%s] = %s;\n" pad arr idx (expr ctx 2)
  | 8 when ctx.bias16 ->
    addf ctx "%sgs[%d] = %s;\n" pad (Support.Prng.int ctx.rng 64) (expr ctx 1)
  | 8 | 9 ->
    (* global scalar update *)
    addf ctx "%sgv%d = gv%d + %s;\n" pad
      (Support.Prng.int ctx.rng 4)
      (Support.Prng.int ctx.rng 4)
      (expr ctx 1)
  | 10 | 11 | 12 ->
    (* if / if-else *)
    addf ctx "%sif (%s) {\n" pad (cmp ctx 1);
    block ctx (depth + 1) (1 + Support.Prng.int ctx.rng 2);
    if Support.Prng.bool ctx.rng then begin
      addf ctx "%s} else {\n" pad;
      block ctx (depth + 1) (1 + Support.Prng.int ctx.rng 2)
    end;
    addf ctx "%s}\n" pad
  | 13 | 14 when ctx.loop_depth < 2 ->
    (* bounded for loop over a fresh iterator *)
    let iv = Printf.sprintf "i%d_%d" depth (Support.Prng.int ctx.rng 1000) in
    let bound = 2 + Support.Prng.int ctx.rng 14 in
    addf ctx "%sfor (int %s = 0; %s < %d; %s++) {\n" pad iv iv bound iv;
    ctx.readables <- iv :: ctx.readables;
    ctx.loop_depth <- ctx.loop_depth + 1;
    block ctx (depth + 1) (1 + Support.Prng.int ctx.rng 3);
    ctx.loop_depth <- ctx.loop_depth - 1;
    ctx.readables <- List.filter (fun l -> l <> iv) ctx.readables;
    addf ctx "%s}\n" pad
  | 15 when ctx.fidx >= 25 && ctx.loop_depth = 0 -> (
    (* Call into the leaf pool (the first 25 functions, which never call
       anything themselves) — keeps total work bounded while giving the
       corpus realistic call-site density. *)
    let target = Support.Prng.int ctx.rng 25 in
    match ctx.locals with
    | [] -> addf ctx "%sgv1 = f%d(%s, %s);\n" pad target (leaf ctx) (leaf ctx)
    | ls ->
      let l = List.nth ls (Support.Prng.int ctx.rng (List.length ls)) in
      addf ctx "%s%s = f%d(%s, %s);\n" pad l target (leaf ctx) (leaf ctx))
  | _ -> (
    (* compound update *)
    match ctx.locals with
    | [] -> addf ctx "%sgv2 = gv2 ^ %s;\n" pad (expr ctx 1)
    | ls ->
      let l = List.nth ls (Support.Prng.int ctx.rng (List.length ls)) in
      let op = [| "+="; "-="; "^="; "|="; "&=" |].(Support.Prng.int ctx.rng 5) in
      addf ctx "%s%s %s %s;\n" pad l op (expr ctx 2))

and block ctx depth n =
  for _ = 1 to n do
    stmt ctx depth
  done

let gen_function rng buf bias16 i =
  let ctx =
    { rng; buf; bias16; locals = [ "a"; "b" ]; readables = [ "a"; "b" ];
      loop_depth = 0; fidx = i }
  in
  (* short-typed locals under bias16 model 16-bit-heavy code *)
  let lty = if bias16 && Support.Prng.int rng 100 < 50 then "short" else "int" in
  addf ctx "int f%d(int a, int b) {\n" i;
  let nlocals = 1 + Support.Prng.int rng 3 in
  for k = 0 to nlocals - 1 do
    let name = Printf.sprintf "v%d" k in
    addf ctx "  %s %s = %s;\n" lty name (expr ctx 1);
    ctx.locals <- name :: ctx.locals;
    ctx.readables <- name :: ctx.readables
  done;
  let nstmts = 4 + Support.Prng.int rng 12 in
  block ctx 0 nstmts;
  addf ctx "  return %s;\n}\n\n" (expr ctx 1)

let generate (p : profile) : Programs.entry =
  let rng = Support.Prng.create p.seed in
  let buf = Buffer.create (p.functions * 512) in
  Buffer.add_string buf "int ga[64];\nint gb[64];\nshort gs[64];\n";
  Buffer.add_string buf "int gv0; int gv1; int gv2; int gv3;\n\n";
  for i = 0 to p.functions - 1 do
    gen_function rng buf p.bias16 i
  done;
  (* driver: call a deterministic sample and print a checksum *)
  Buffer.add_string buf "int main() {\n  int sum = 0;\n  int i;\n";
  Buffer.add_string buf "  for (i = 0; i < 64; i++) { ga[i] = i * 3 + 1; gb[i] = 64 - i; }\n";
  let sample = min p.functions 40 in
  for k = 0 to sample - 1 do
    let fi = k * (p.functions / max 1 sample) in
    Buffer.add_string buf
      (Printf.sprintf "  sum = (sum ^ f%d(%d, %d)) & 0xFFFFFF;\n" fi (k + 1)
         ((k * 7) + 2))
  done;
  Buffer.add_string buf "  print_int(sum);\n  putchar('\\n');\n  return sum & 127;\n}\n";
  let name =
    Printf.sprintf "gen%s_%d" (if p.bias16 then "16" else "") p.functions
  in
  {
    Programs.name;
    description =
      Printf.sprintf "generated program, %d functions%s (seed %Ld)" p.functions
        (if p.bias16 then ", 16-bit biased" else "")
        p.seed;
    source = Buffer.contents buf;
    input = "";
  }
