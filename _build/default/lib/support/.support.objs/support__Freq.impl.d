lib/support/freq.ml: Hashtbl List
