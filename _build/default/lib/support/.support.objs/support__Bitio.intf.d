lib/support/bitio.mli: Bytes
