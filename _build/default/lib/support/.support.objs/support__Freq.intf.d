lib/support/freq.mli:
