lib/support/util.mli: Buffer Bytes
