lib/support/prng.mli:
