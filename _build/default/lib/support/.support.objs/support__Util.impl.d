lib/support/util.ml: Buffer Bytes Char List Printf String
