lib/support/heap.ml: Array List
