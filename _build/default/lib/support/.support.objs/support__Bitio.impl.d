lib/support/bitio.ml: Bytes Char
