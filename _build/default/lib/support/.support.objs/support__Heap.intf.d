lib/support/heap.mli:
