(** Frequency tables over arbitrary keys, used to drive Huffman and
    Markov model construction. *)

type 'a t

val create : unit -> 'a t
val add : 'a t -> 'a -> unit
val add_many : 'a t -> 'a -> int -> unit
val count : 'a t -> 'a -> int
val total : 'a t -> int
val distinct : 'a t -> int

val to_list : 'a t -> ('a * int) list
(** Pairs in decreasing count order; ties broken arbitrarily but
    deterministically for keys added in a fixed order. *)

val iter : ('a -> int -> unit) -> 'a t -> unit

val entropy_bits : 'a t -> float
(** Shannon entropy of the empirical distribution, in bits per symbol.
    0.0 for an empty table. *)
