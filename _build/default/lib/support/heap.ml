type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable arr : 'a array;
  mutable len : int;
}

let create ~cmp = { cmp; arr = [||]; len = 0 }

let length h = h.len
let is_empty h = h.len = 0

let swap h i j =
  let t = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if h.cmp h.arr.(i) h.arr.(p) > 0 then begin
      swap h i p;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < h.len && h.cmp h.arr.(l) h.arr.(!best) > 0 then best := l;
  if r < h.len && h.cmp h.arr.(r) h.arr.(!best) > 0 then best := r;
  if !best <> i then begin
    swap h i !best;
    sift_down h !best
  end

let push h x =
  if h.len = Array.length h.arr then begin
    let cap = max 16 (2 * Array.length h.arr) in
    let na = Array.make cap x in
    Array.blit h.arr 0 na 0 h.len;
    h.arr <- na
  end;
  h.arr.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some h.arr.(0)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty"

let of_list ~cmp xs =
  let h = create ~cmp in
  List.iter (push h) xs;
  h

let to_sorted_list h =
  let rec go acc = match pop h with None -> List.rev acc | Some x -> go (x :: acc) in
  go []
