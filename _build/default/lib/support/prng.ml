type t = { mutable state : int64 }

let create seed = { state = seed }

let next64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Int64.to_int keeps the low 63 bits, which can be negative as a
     native int; mask to the non-negative range first. *)
  let r = Int64.to_int (next64 t) land max_int in
  r mod bound

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (next64 t) 11) in
  float_of_int r /. 9007199254740992.0 (* 2^53 *)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  if total <= 0 then invalid_arg "Prng.weighted: weights must sum positive";
  let r = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted: unreachable"
    | (w, x) :: rest -> if r < acc + w then x else go (acc + w) rest
  in
  go 0 choices

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric";
  let rec go n = if n >= 64 || float t < p then n else go (n + 1) in
  go 0
