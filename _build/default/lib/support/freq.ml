type 'a t = {
  tbl : ('a, int ref) Hashtbl.t;
  order : ('a, int) Hashtbl.t;    (* insertion order for deterministic ties *)
  mutable next_ord : int;
  mutable total : int;
}

let create () =
  { tbl = Hashtbl.create 64; order = Hashtbl.create 64; next_ord = 0; total = 0 }

let add_many t k n =
  t.total <- t.total + n;
  match Hashtbl.find_opt t.tbl k with
  | Some r -> r := !r + n
  | None ->
    Hashtbl.add t.tbl k (ref n);
    Hashtbl.add t.order k t.next_ord;
    t.next_ord <- t.next_ord + 1

let add t k = add_many t k 1

let count t k = match Hashtbl.find_opt t.tbl k with Some r -> !r | None -> 0
let total t = t.total
let distinct t = Hashtbl.length t.tbl

let to_list t =
  let items =
    Hashtbl.fold (fun k r acc -> (k, !r, Hashtbl.find t.order k) :: acc) t.tbl []
  in
  let sorted =
    List.sort
      (fun (_, c1, o1) (_, c2, o2) ->
        if c1 <> c2 then compare c2 c1 else compare o1 o2)
      items
  in
  List.map (fun (k, c, _) -> (k, c)) sorted

let iter f t = Hashtbl.iter (fun k r -> f k !r) t.tbl

let entropy_bits t =
  if t.total = 0 then 0.0
  else begin
    let n = float_of_int t.total in
    let h = ref 0.0 in
    Hashtbl.iter
      (fun _ r ->
        let p = float_of_int !r /. n in
        if p > 0.0 then h := !h -. (p *. (log p /. log 2.0)))
      t.tbl;
    !h
  end
