(** Deterministic splitmix64 pseudo-random generator.

    The corpus program generator and workload sweeps must be reproducible
    across runs and machines, so we avoid [Random] (whose sequence depends
    on the stdlib version) in favour of a fixed, documented algorithm. *)

type t

val create : int64 -> t
(** Seeded generator. The same seed always yields the same sequence. *)

val next64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** Pick by integer weight; weights must be non-negative with positive sum. *)

val geometric : t -> p:float -> int
(** Number of failures before first success; p in (0,1]. Capped at 64. *)
