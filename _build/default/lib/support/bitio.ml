module Writer = struct
  type t = {
    mutable buf : Bytes.t;
    mutable len : int;          (* complete bytes *)
    mutable acc : int;          (* pending bits, LSB-first *)
    mutable nacc : int;         (* number of pending bits, < 8 *)
  }

  let create ?(capacity = 256) () =
    { buf = Bytes.create (max 16 capacity); len = 0; acc = 0; nacc = 0 }

  let ensure w extra =
    let need = w.len + extra in
    if need > Bytes.length w.buf then begin
      let cap = ref (Bytes.length w.buf * 2) in
      while !cap < need do cap := !cap * 2 done;
      let nb = Bytes.create !cap in
      Bytes.blit w.buf 0 nb 0 w.len;
      w.buf <- nb
    end

  let flush_acc w =
    while w.nacc >= 8 do
      ensure w 1;
      Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (w.acc land 0xff));
      w.len <- w.len + 1;
      w.acc <- w.acc lsr 8;
      w.nacc <- w.nacc - 8
    done

  let put_bit w b =
    w.acc <- w.acc lor ((b land 1) lsl w.nacc);
    w.nacc <- w.nacc + 1;
    if w.nacc = 8 then flush_acc w

  let put_bits w v n =
    if n < 0 || n > 56 then invalid_arg "Bitio.Writer.put_bits";
    let v = if n = 56 then v else v land ((1 lsl n) - 1) in
    w.acc <- w.acc lor (v lsl w.nacc);
    w.nacc <- w.nacc + n;
    flush_acc w

  let put_bits_msb w v n =
    if n < 0 || n > 56 then invalid_arg "Bitio.Writer.put_bits_msb";
    for i = n - 1 downto 0 do put_bit w ((v lsr i) land 1) done

  let align_byte w = if w.nacc > 0 then put_bits w 0 (8 - w.nacc)

  let put_byte w b = put_bits w (b land 0xff) 8

  let put_bytes w b =
    if w.nacc = 0 then begin
      let n = Bytes.length b in
      ensure w n;
      Bytes.blit b 0 w.buf w.len n;
      w.len <- w.len + n
    end
    else Bytes.iter (fun c -> put_byte w (Char.code c)) b

  let put_string w s = put_bytes w (Bytes.unsafe_of_string s)

  let bit_length w = (w.len * 8) + w.nacc

  let contents w =
    let extra = if w.nacc > 0 then 1 else 0 in
    let out = Bytes.create (w.len + extra) in
    Bytes.blit w.buf 0 out 0 w.len;
    if extra = 1 then Bytes.set out w.len (Char.chr (w.acc land 0xff));
    out
end

module Reader = struct
  type t = { data : Bytes.t; mutable pos : int (* bit position *) }

  let of_bytes b = { data = b; pos = 0 }
  let of_string s = of_bytes (Bytes.unsafe_of_string s)

  let total_bits r = Bytes.length r.data * 8
  let bits_remaining r = total_bits r - r.pos
  let bit_position r = r.pos

  let get_bit r =
    if r.pos >= total_bits r then failwith "Bitio.Reader: out of bits";
    let byte = Char.code (Bytes.unsafe_get r.data (r.pos lsr 3)) in
    let bit = (byte lsr (r.pos land 7)) land 1 in
    r.pos <- r.pos + 1;
    bit

  let get_bits r n =
    if n < 0 || n > 56 then invalid_arg "Bitio.Reader.get_bits";
    let v = ref 0 in
    for i = 0 to n - 1 do
      v := !v lor (get_bit r lsl i)
    done;
    !v

  let get_bits_msb r n =
    if n < 0 || n > 56 then invalid_arg "Bitio.Reader.get_bits_msb";
    let v = ref 0 in
    for _ = 1 to n do
      v := (!v lsl 1) lor get_bit r
    done;
    !v

  let align_byte r =
    let rem = r.pos land 7 in
    if rem > 0 then r.pos <- r.pos + (8 - rem)

  let get_byte r = get_bits r 8

  let seek_bit r p =
    if p < 0 || p > total_bits r then invalid_arg "Bitio.Reader.seek_bit";
    r.pos <- p
end
