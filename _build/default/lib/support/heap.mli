(** Imperative binary max-heap parameterized by an explicit comparison.

    Used by the BRISC dictionary builder to rank candidate instruction
    patterns by benefit, and by the Huffman builder (as a min-heap via an
    inverted comparison). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Max-heap with respect to [cmp]: [pop] returns the greatest element. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val pop : 'a t -> 'a option

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
(** Destructively drains the heap; result is in decreasing order. *)
