type config = { line_bytes : int; lines : int; miss_cycles : int }

let default_config ~lines = { line_bytes = 32; lines; miss_cycles = 20 }

type result = { accesses : int; misses : int; miss_cycles_total : int }

let simulate cfg trace =
  let tags = Array.make cfg.lines (-1) in
  let accesses = ref 0 in
  let misses = ref 0 in
  List.iter
    (fun (off, len) ->
      incr accesses;
      let first = off / cfg.line_bytes in
      let last = (off + max 1 len - 1) / cfg.line_bytes in
      for line = first to last do
        let slot = line mod cfg.lines in
        if tags.(slot) <> line then begin
          incr misses;
          tags.(slot) <- line
        end
      done)
    trace;
  { accesses = !accesses; misses = !misses;
    miss_cycles_total = !misses * cfg.miss_cycles }

(* Per-instruction byte offsets of the native image: functions laid out
   back to back, each instruction at the prefix sum of encoded sizes. *)
let native_layout (np : Native.Mach.nprogram) =
  let base = ref 0 in
  List.map
    (fun (f : Native.Mach.nfunc) ->
      let offs =
        Array.of_list
          (List.rev
             (snd
                (List.fold_left
                   (fun (pos, acc) i ->
                     (pos + Native.Mach.encoded_size i,
                      (pos, Native.Mach.encoded_size i) :: acc))
                   (!base, []) f.Native.Mach.code)))
      in
      base := !base + Native.Mach.func_size f;
      offs)
    np.Native.Mach.funcs
  |> Array.of_list

let native_fetch_trace (np : Native.Mach.nprogram) ?input () =
  let layout = native_layout np in
  let trace = ref [] in
  let (_ : Native.Sim.result) =
    Native.Sim.run ?input
      ~on_instr:(fun fidx iidx -> trace := layout.(fidx).(iidx) :: !trace)
      np
  in
  List.rev !trace

let brisc_fetch_trace (img : Brisc.Emit.image) ?input () =
  (* function base offsets within the packed code section *)
  let bases = Array.make (Array.length img.Brisc.Emit.ifuncs) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i (f : Brisc.Emit.ifunc) ->
      bases.(i) <- !acc;
      acc := !acc + String.length f.Brisc.Emit.code)
    img.Brisc.Emit.ifuncs;
  let trace = ref [] in
  let (_ : Brisc.Interp.result) =
    Brisc.Interp.run ?input
      ~on_dispatch:(fun fidx off len -> trace := (bases.(fidx) + off, len) :: !trace)
      img
  in
  List.rev !trace
