(** Working-set / paging simulator (paper introduction: "we have seen
    the CPU idle for most of the time during paging, so compressing
    pages can increase total performance even though the CPU must
    decompress or interpret the page contents"; §4: interpretation "cuts
    working set size by over 40%").

    Model: a program's code is split into per-function segments laid out
    on fixed-size pages; execution is a function-level reference trace
    (from the VM interpreter's real call sequence); a resident set of N
    pages is managed with LRU. Each fault costs a disk access, plus a
    decompression cost when the stored image is compressed. Comparing
    native code against compressed code on the same memory budget shows
    when the smaller image's fewer faults pay for its interpretation
    overhead. *)

type config = {
  page_bytes : int;        (** default 4096 *)
  resident_pages : int;    (** memory budget *)
  fault_cost_us : float;   (** disk access, default 10ms *)
  decompress_us_per_page : float;
      (** extra per-fault cost when the paged-in form must be expanded *)
}

val default_config : resident_pages:int -> config

type layout = { seg_page : int array; pages : int }
(** [seg_page.(f)] is the first page of function [f]'s code; [pages] is
    the image's total page count. Functions smaller than a page share
    pages (packed first-fit in order). *)

val layout_of_sizes : page_bytes:int -> int array -> layout
(** Lay out per-function code sizes onto pages. *)

type result = {
  references : int;        (** trace length *)
  faults : int;
  fault_time_s : float;
  working_set_pages : int; (** distinct pages touched *)
}

val simulate : config -> layout -> int list -> result
(** Run an LRU simulation over a function-reference trace. *)

val trace_of_program :
  ?input:string -> Vm.Isa.vprogram -> int list
(** Function-level reference trace from actually interpreting the
    program: one entry per function entered (callee index), in order. *)

val func_sizes_native : Vm.Isa.vprogram -> int array
val func_sizes_brisc : Brisc.Emit.image -> int array
