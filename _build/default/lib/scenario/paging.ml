type config = {
  page_bytes : int;
  resident_pages : int;
  fault_cost_us : float;
  decompress_us_per_page : float;
}

let default_config ~resident_pages =
  { page_bytes = 4096; resident_pages; fault_cost_us = 10_000.0;
    decompress_us_per_page = 0.0 }

type layout = { seg_page : int array; pages : int }

let layout_of_sizes ~page_bytes sizes =
  (* pack function segments onto pages first-fit in order: a function
     starts on the current page if it fits in the remainder, else on a
     fresh page; functions bigger than a page span several *)
  let n = Array.length sizes in
  let seg_page = Array.make n 0 in
  let page = ref 0 in
  let used = ref 0 in
  for f = 0 to n - 1 do
    let sz = max 1 sizes.(f) in
    if !used > 0 && !used + sz > page_bytes then begin
      incr page;
      used := 0
    end;
    seg_page.(f) <- !page;
    let total = !used + sz in
    page := !page + ((total - 1) / page_bytes);
    used := total mod page_bytes;
    if !used = 0 && total > 0 then incr page
  done;
  let pages = !page + if !used > 0 then 1 else 0 in
  { seg_page; pages = max pages 1 }

type result = {
  references : int;
  faults : int;
  fault_time_s : float;
  working_set_pages : int;
}

(* LRU over page ids via a timestamped table. *)
let simulate cfg layout trace =
  let last_use : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let resident : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let touched : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let clock = ref 0 in
  let faults = ref 0 in
  let evict_lru () =
    let victim = ref (-1) and oldest = ref max_int in
    Hashtbl.iter
      (fun p () ->
        let t = try Hashtbl.find last_use p with Not_found -> 0 in
        if t < !oldest then begin
          oldest := t;
          victim := p
        end)
      resident;
    if !victim >= 0 then Hashtbl.remove resident !victim
  in
  let touch page =
    incr clock;
    Hashtbl.replace touched page ();
    Hashtbl.replace last_use page !clock;
    if not (Hashtbl.mem resident page) then begin
      incr faults;
      if Hashtbl.length resident >= cfg.resident_pages then evict_lru ();
      Hashtbl.replace resident page ()
    end
  in
  List.iter (fun f -> touch layout.seg_page.(f)) trace;
  let per_fault = cfg.fault_cost_us +. cfg.decompress_us_per_page in
  {
    references = List.length trace;
    faults = !faults;
    fault_time_s = float_of_int !faults *. per_fault /. 1.0e6;
    working_set_pages = Hashtbl.length touched;
  }

let trace_of_program ?input (vp : Vm.Isa.vprogram) =
  let trace = ref [] in
  let (_ : Vm.Interp.result) =
    Vm.Interp.run ?input ~on_call:(fun f -> trace := f :: !trace) vp
  in
  List.rev !trace

let func_sizes_native (vp : Vm.Isa.vprogram) =
  vp.Vm.Isa.funcs
  |> List.map (fun f -> Native.Mach.func_size (Native.Compile.compile_func f))
  |> Array.of_list

let func_sizes_brisc (img : Brisc.Emit.image) =
  Array.map (fun (f : Brisc.Emit.ifunc) -> String.length f.Brisc.Emit.code)
    img.Brisc.Emit.ifuncs
