lib/scenario/paging.mli: Brisc Vm
