lib/scenario/paging.ml: Array Brisc Hashtbl List Native String Vm
