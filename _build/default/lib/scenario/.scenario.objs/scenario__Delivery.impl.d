lib/scenario/delivery.ml: List
