lib/scenario/icache.ml: Array Brisc List Native String
