lib/scenario/delivery.mli:
