lib/scenario/icache.mli: Brisc Native
