(** Instruction-cache model (paper introduction: compression can pay
    "even for cache misses if the decompressor is fast enough").

    A direct-mapped instruction cache is fed the byte ranges of executed
    instructions. Two images of the same program are compared: the
    native encoding and the denser BRISC encoding. The denser image
    touches fewer lines; whether that wins overall depends on the
    per-dispatch decode overhead — exactly the trade the paper sketches.
    The model returns both miss counts and a modelled cycle total so the
    bench can print the crossover against cache size. *)

type config = {
  line_bytes : int;     (** cache line size, default 32 *)
  lines : int;          (** number of lines (direct mapped) *)
  miss_cycles : int;    (** memory fetch penalty, default 20 *)
}

val default_config : lines:int -> config

type result = {
  accesses : int;
  misses : int;
  miss_cycles_total : int;
}

val simulate : config -> (int * int) list -> result
(** Feed (byte offset, length) instruction fetches through the cache.
    Offsets are absolute within the code image. *)

val native_fetch_trace : Native.Mach.nprogram -> ?input:string -> unit -> (int * int) list
(** Instruction fetch trace (offset, encoded length) of an actual
    execution of the native program. *)

val brisc_fetch_trace : Brisc.Emit.image -> ?input:string -> unit -> (int * int) list
(** Same for direct interpretation of the BRISC image: each dispatch
    fetches the instruction's compressed bytes. *)
