(** The paper's wire format (§3). See {!Wire_format} for the pipeline
    description; this facade re-exports it and adds the
    function-at-a-time {!Chunked} variant. *)

include module type of Wire_format

module Chunked = Chunked
