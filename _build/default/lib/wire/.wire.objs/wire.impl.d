lib/wire/wire.ml: Chunked Wire_format
