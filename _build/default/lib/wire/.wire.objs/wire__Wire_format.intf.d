lib/wire/wire_format.mli: Ir
