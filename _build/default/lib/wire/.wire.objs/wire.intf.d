lib/wire/wire.mli: Chunked Wire_format
