lib/wire/wire_format.ml: Array Buffer Bytes Char Hashtbl Ir List Printf String Support Zip
