lib/wire/chunked.ml: Buffer Char Ir List String Support Wire_format
