lib/wire/chunked.mli: Ir
