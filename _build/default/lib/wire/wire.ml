(* Facade: the monolithic wire format plus the function-at-a-time
   chunked variant. *)
include Wire_format
module Chunked = Chunked
