type lit = Lint of int | Lsym of string

type pat =
  | Pcnst of Op.ty * Op.width
  | Paddrl of Op.width
  | Paddrf of Op.width
  | Paddrg
  | Pindir of Op.ty * pat
  | Pbinop of Op.ty * Op.binop * pat * pat
  | Pneg of Op.ty * pat
  | Pbcom of Op.ty * pat
  | Pcvt of Op.ty * Op.ty * pat
  | Pcall of Op.ty * pat

type spat =
  | Pasgn of Op.ty * pat * pat
  | Parg of Op.ty * pat
  | Pscall of Op.ty * pat
  | Pscnd of Op.relop * Op.ty * pat * pat
  | Pjump
  | Plabel
  | Pret of Op.ty * pat option

(* ---- patternize / reassemble ---- *)

let rec pat_of_tree t acc =
  match t with
  | Tree.Cnst (ty, w, v) -> (Pcnst (ty, w), (Op.Lc_cnst w, Lint v) :: acc)
  | Tree.Addrl (w, off) -> (Paddrl w, (Op.Lc_addrl w, Lint off) :: acc)
  | Tree.Addrf (w, off) -> (Paddrf w, (Op.Lc_addrf w, Lint off) :: acc)
  | Tree.Addrg name -> (Paddrg, (Op.Lc_addrg, Lsym name) :: acc)
  | Tree.Indir (ty, a) ->
    let p, acc = pat_of_tree a acc in
    (Pindir (ty, p), acc)
  | Tree.Binop (ty, op, a, b) ->
    let pa, acc = pat_of_tree a acc in
    let pb, acc = pat_of_tree b acc in
    (Pbinop (ty, op, pa, pb), acc)
  | Tree.Neg (ty, a) ->
    let p, acc = pat_of_tree a acc in
    (Pneg (ty, p), acc)
  | Tree.Bcom (ty, a) ->
    let p, acc = pat_of_tree a acc in
    (Pbcom (ty, p), acc)
  | Tree.Cvt (f, t_, a) ->
    let p, acc = pat_of_tree a acc in
    (Pcvt (f, t_, p), acc)
  | Tree.Call (ty, a) ->
    let p, acc = pat_of_tree a acc in
    (Pcall (ty, p), acc)

let of_stmt s =
  let finish sp acc = (sp, List.rev acc) in
  match s with
  | Tree.Sasgn (ty, a, v) ->
    let pa, acc = pat_of_tree a [] in
    let pv, acc = pat_of_tree v acc in
    finish (Pasgn (ty, pa, pv)) acc
  | Tree.Sarg (ty, t) ->
    let p, acc = pat_of_tree t [] in
    finish (Parg (ty, p)) acc
  | Tree.Scall (ty, t) ->
    let p, acc = pat_of_tree t [] in
    finish (Pscall (ty, p)) acc
  | Tree.Scnd (rel, ty, a, b, lbl) ->
    (* The label operand is read first (it prints before the operand
       trees, as in LEI[1](...)), then the tree literals. *)
    let pa, acc = pat_of_tree a [ (Op.Lc_label, Lsym lbl) ] in
    let pb, acc = pat_of_tree b acc in
    finish (Pscnd (rel, ty, pa, pb)) acc
  | Tree.Sjump lbl -> (Pjump, [ (Op.Lc_label, Lsym lbl) ])
  | Tree.Slabel lbl -> (Plabel, [ (Op.Lc_label, Lsym lbl) ])
  | Tree.Sret (ty, None) -> (Pret (ty, None), [])
  | Tree.Sret (ty, Some t) ->
    let p, acc = pat_of_tree t [] in
    finish (Pret (ty, Some p)) acc

exception Bad_lits of string

let pop_int cls = function
  | (cls', Lint v) :: rest when cls' = cls -> (v, rest)
  | _ -> raise (Bad_lits "expected numeric literal")

let pop_sym cls = function
  | (cls', Lsym s) :: rest when cls' = cls -> (s, rest)
  | _ -> raise (Bad_lits "expected symbolic literal")

let rec tree_of_pat p lits =
  match p with
  | Pcnst (ty, w) ->
    let v, lits = pop_int (Op.Lc_cnst w) lits in
    (Tree.Cnst (ty, w, v), lits)
  | Paddrl w ->
    let v, lits = pop_int (Op.Lc_addrl w) lits in
    (Tree.Addrl (w, v), lits)
  | Paddrf w ->
    let v, lits = pop_int (Op.Lc_addrf w) lits in
    (Tree.Addrf (w, v), lits)
  | Paddrg ->
    let s, lits = pop_sym Op.Lc_addrg lits in
    (Tree.Addrg s, lits)
  | Pindir (ty, a) ->
    let t, lits = tree_of_pat a lits in
    (Tree.Indir (ty, t), lits)
  | Pbinop (ty, op, a, b) ->
    let ta, lits = tree_of_pat a lits in
    let tb, lits = tree_of_pat b lits in
    (Tree.Binop (ty, op, ta, tb), lits)
  | Pneg (ty, a) ->
    let t, lits = tree_of_pat a lits in
    (Tree.Neg (ty, t), lits)
  | Pbcom (ty, a) ->
    let t, lits = tree_of_pat a lits in
    (Tree.Bcom (ty, t), lits)
  | Pcvt (f, t_, a) ->
    let t, lits = tree_of_pat a lits in
    (Tree.Cvt (f, t_, t), lits)
  | Pcall (ty, a) ->
    let t, lits = tree_of_pat a lits in
    (Tree.Call (ty, t), lits)

let to_stmt sp lits =
  try
    let stmt, rest =
      match sp with
      | Pasgn (ty, a, v) ->
        let ta, lits = tree_of_pat a lits in
        let tv, lits = tree_of_pat v lits in
        (Tree.Sasgn (ty, ta, tv), lits)
      | Parg (ty, p) ->
        let t, lits = tree_of_pat p lits in
        (Tree.Sarg (ty, t), lits)
      | Pscall (ty, p) ->
        let t, lits = tree_of_pat p lits in
        (Tree.Scall (ty, t), lits)
      | Pscnd (rel, ty, a, b) ->
        let lbl, lits = pop_sym Op.Lc_label lits in
        let ta, lits = tree_of_pat a lits in
        let tb, lits = tree_of_pat b lits in
        (Tree.Scnd (rel, ty, ta, tb, lbl), lits)
      | Pjump ->
        let lbl, lits = pop_sym Op.Lc_label lits in
        (Tree.Sjump lbl, lits)
      | Plabel ->
        let lbl, lits = pop_sym Op.Lc_label lits in
        (Tree.Slabel lbl, lits)
      | Pret (ty, None) -> (Tree.Sret (ty, None), lits)
      | Pret (ty, Some p) ->
        let t, lits = tree_of_pat p lits in
        (Tree.Sret (ty, Some t), lits)
    in
    if rest <> [] then failwith "Pattern.to_stmt: leftover literals";
    stmt
  with Bad_lits msg -> failwith ("Pattern.to_stmt: " ^ msg)

let lit_slots sp =
  (* Reuse of_stmt's ordering by rebuilding with dummy literals is not
     possible (we only have the pattern), so walk the pattern itself. *)
  let acc = ref [] in
  let push c = acc := c :: !acc in
  let rec walk = function
    | Pcnst (_, w) -> push (Op.Lc_cnst w)
    | Paddrl w -> push (Op.Lc_addrl w)
    | Paddrf w -> push (Op.Lc_addrf w)
    | Paddrg -> push Op.Lc_addrg
    | Pindir (_, a) | Pneg (_, a) | Pbcom (_, a) | Pcvt (_, _, a) | Pcall (_, a)
      -> walk a
    | Pbinop (_, _, a, b) ->
      walk a;
      walk b
  in
  (match sp with
  | Pasgn (_, a, v) ->
    walk a;
    walk v
  | Parg (_, p) | Pscall (_, p) -> walk p
  | Pscnd (_, _, a, b) ->
    push Op.Lc_label;
    walk a;
    walk b
  | Pjump | Plabel -> push Op.Lc_label
  | Pret (_, None) -> ()
  | Pret (_, Some p) -> walk p);
  List.rev !acc

(* ---- rendering ---- *)

let cnst_name ty w =
  match (ty, w) with
  | _, Op.W8 -> "CNSTC"
  | _, Op.W16 -> "CNSTS"
  | Op.P, Op.W32 -> "CNSTP"
  | _, Op.W32 -> "CNSTI"

let rec pat_to_string = function
  | Pcnst (ty, w) -> Printf.sprintf "%s[*]" (cnst_name ty w)
  | Paddrl w -> Printf.sprintf "ADDRLP%s[*]" (Op.width_suffix w)
  | Paddrf w -> Printf.sprintf "ADDRFP%s[*]" (Op.width_suffix w)
  | Paddrg -> "ADDRGP[*]"
  | Pindir (ty, a) ->
    Printf.sprintf "INDIR%s(%s)" (Op.ty_to_string ty) (pat_to_string a)
  | Pbinop (ty, op, a, b) ->
    Printf.sprintf "%s%s(%s,%s)" (Op.binop_to_string op) (Op.ty_to_string ty)
      (pat_to_string a) (pat_to_string b)
  | Pneg (ty, a) ->
    Printf.sprintf "NEG%s(%s)" (Op.ty_to_string ty) (pat_to_string a)
  | Pbcom (ty, a) ->
    Printf.sprintf "BCOM%s(%s)" (Op.ty_to_string ty) (pat_to_string a)
  | Pcvt (f, t, a) ->
    Printf.sprintf "CV%s%s(%s)" (Op.ty_to_string f) (Op.ty_to_string t)
      (pat_to_string a)
  | Pcall (ty, a) ->
    Printf.sprintf "CALL%s(%s)" (Op.ty_to_string ty) (pat_to_string a)

let spat_to_string = function
  | Pasgn (ty, a, v) ->
    Printf.sprintf "ASGN%s(%s, %s)" (Op.ty_to_string ty) (pat_to_string a)
      (pat_to_string v)
  | Parg (ty, p) ->
    Printf.sprintf "ARG%s(%s)" (Op.ty_to_string ty) (pat_to_string p)
  | Pscall (ty, p) ->
    Printf.sprintf "CALL%s(%s)" (Op.ty_to_string ty) (pat_to_string p)
  | Pscnd (rel, ty, a, b) ->
    Printf.sprintf "%s%s[*](%s,%s)" (Op.relop_to_string rel)
      (Op.ty_to_string ty) (pat_to_string a) (pat_to_string b)
  | Pjump -> "JUMPV[*]"
  | Plabel -> "LABELV"
  | Pret (_, None) -> "RETV"
  | Pret (ty, Some p) ->
    Printf.sprintf "RET%s(%s)" (Op.ty_to_string ty) (pat_to_string p)

(* ---- byte encoding: one opcode byte per node, prefix order ---- *)

type nodeop =
  | Ncnst of Op.ty * Op.width
  | Naddrl of Op.width
  | Naddrf of Op.width
  | Naddrg
  | Nindir of Op.ty
  | Nbinop of Op.ty * Op.binop
  | Nneg of Op.ty
  | Nbcom of Op.ty
  | Ncvt of Op.ty * Op.ty
  | Ncall of Op.ty
  | Nasgn of Op.ty
  | Narg of Op.ty
  | Nscall of Op.ty
  | Nscnd of Op.relop * Op.ty
  | Njump
  | Nlabel
  | Nret of Op.ty
  | Nretv

let value_tys = [ Op.I; Op.C; Op.S; Op.P ]
let widths = [ Op.W8; Op.W16; Op.W32 ]

let binops =
  [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Mod; Op.Band; Op.Bor; Op.Bxor; Op.Lsh;
    Op.Rsh ]

let relops = [ Op.Eq; Op.Ne; Op.Lt; Op.Le; Op.Gt; Op.Ge ]

let all_nodeops : nodeop array =
  let acc = ref [] in
  let add x = acc := x :: !acc in
  List.iter (fun ty -> List.iter (fun w -> add (Ncnst (ty, w))) widths) value_tys;
  List.iter (fun w -> add (Naddrl w)) widths;
  List.iter (fun w -> add (Naddrf w)) widths;
  add Naddrg;
  List.iter (fun ty -> add (Nindir ty)) value_tys;
  List.iter
    (fun op -> List.iter (fun ty -> add (Nbinop (ty, op))) [ Op.I; Op.P ])
    binops;
  add (Nneg Op.I);
  add (Nbcom Op.I);
  List.iter
    (fun (f, t) -> add (Ncvt (f, t)))
    [ (Op.C, Op.I); (Op.I, Op.C); (Op.S, Op.I); (Op.I, Op.S); (Op.P, Op.I);
      (Op.I, Op.P); (Op.C, Op.S); (Op.S, Op.C) ];
  List.iter (fun ty -> add (Ncall ty)) [ Op.I; Op.P ];
  List.iter (fun ty -> add (Nasgn ty)) value_tys;
  List.iter (fun ty -> add (Narg ty)) value_tys;
  List.iter (fun ty -> add (Nscall ty)) [ Op.I; Op.P; Op.V ];
  List.iter
    (fun rel -> List.iter (fun ty -> add (Nscnd (rel, ty))) [ Op.I; Op.P ])
    relops;
  add Njump;
  add Nlabel;
  List.iter (fun ty -> add (Nret ty)) value_tys;
  add Nretv;
  Array.of_list (List.rev !acc)

let opcode_count = Array.length all_nodeops

let code_of_nodeop : (nodeop, int) Hashtbl.t =
  let h = Hashtbl.create 128 in
  Array.iteri (fun i op -> Hashtbl.add h op i) all_nodeops;
  h

let opcode op =
  match Hashtbl.find_opt code_of_nodeop op with
  | Some c -> c
  | None -> failwith "Pattern.encode: operator outside the IR vocabulary"

let encode sp =
  let buf = Buffer.create 16 in
  let emit op = Buffer.add_char buf (Char.chr (opcode op)) in
  let rec walk = function
    | Pcnst (ty, w) -> emit (Ncnst (ty, w))
    | Paddrl w -> emit (Naddrl w)
    | Paddrf w -> emit (Naddrf w)
    | Paddrg -> emit Naddrg
    | Pindir (ty, a) ->
      emit (Nindir ty);
      walk a
    | Pbinop (ty, op, a, b) ->
      emit (Nbinop (ty, op));
      walk a;
      walk b
    | Pneg (ty, a) ->
      emit (Nneg ty);
      walk a
    | Pbcom (ty, a) ->
      emit (Nbcom ty);
      walk a
    | Pcvt (f, t, a) ->
      emit (Ncvt (f, t));
      walk a
    | Pcall (ty, a) ->
      emit (Ncall ty);
      walk a
  in
  (match sp with
  | Pasgn (ty, a, v) ->
    emit (Nasgn ty);
    walk a;
    walk v
  | Parg (ty, p) ->
    emit (Narg ty);
    walk p
  | Pscall (ty, p) ->
    emit (Nscall ty);
    walk p
  | Pscnd (rel, ty, a, b) ->
    emit (Nscnd (rel, ty));
    walk a;
    walk b
  | Pjump -> emit Njump
  | Plabel -> emit Nlabel
  | Pret (ty, None) ->
    ignore ty;
    emit Nretv
  | Pret (ty, Some p) ->
    emit (Nret ty);
    walk p);
  Buffer.contents buf

let decode s pos =
  let next () =
    if !pos >= String.length s then failwith "Pattern.decode: truncated";
    let c = Char.code s.[!pos] in
    incr pos;
    if c >= opcode_count then failwith "Pattern.decode: bad opcode";
    all_nodeops.(c)
  in
  let rec tree () =
    match next () with
    | Ncnst (ty, w) -> Pcnst (ty, w)
    | Naddrl w -> Paddrl w
    | Naddrf w -> Paddrf w
    | Naddrg -> Paddrg
    | Nindir ty -> Pindir (ty, tree ())
    | Nbinop (ty, op) ->
      let a = tree () in
      let b = tree () in
      Pbinop (ty, op, a, b)
    | Nneg ty -> Pneg (ty, tree ())
    | Nbcom ty -> Pbcom (ty, tree ())
    | Ncvt (f, t) -> Pcvt (f, t, tree ())
    | Ncall ty -> Pcall (ty, tree ())
    | Nasgn _ | Narg _ | Nscall _ | Nscnd _ | Njump | Nlabel | Nret _ | Nretv ->
      failwith "Pattern.decode: statement opcode inside a tree"
  in
  match next () with
  | Nasgn ty ->
    let a = tree () in
    let v = tree () in
    Pasgn (ty, a, v)
  | Narg ty -> Parg (ty, tree ())
  | Nscall ty -> Pscall (ty, tree ())
  | Nscnd (rel, ty) ->
    let a = tree () in
    let b = tree () in
    Pscnd (rel, ty, a, b)
  | Njump -> Pjump
  | Nlabel -> Plabel
  | Nret ty -> Pret (ty, Some (tree ()))
  | Nretv -> Pret (Op.V, None)
  | Ncnst _ | Naddrl _ | Naddrf _ | Naddrg | Nindir _ | Nbinop _ | Nneg _
  | Nbcom _ | Ncvt _ | Ncall _ ->
    failwith "Pattern.decode: tree opcode at statement position"

let compare (a : spat) (b : spat) = Stdlib.compare a b
let equal (a : spat) (b : spat) = a = b
let hash (sp : spat) = Hashtbl.hash sp
