(** Parser for the textual IR produced by {!Printer}, so programs can be
    written by hand in tests, dumped, and re-read by the CLI tools.

    Grammar (whitespace-insensitive inside expressions; ellipses denote
    repetition):
    {v
      program  := { global | function } ...
      global   := "global" NAME INT [ "=" INT { "," INT } ... ]
      function := "function" NAME "(" [formals] ")" "frame" INT "{" stmts "}"
      formals  := NAME ":" TY { "," NAME ":" TY } ...
      stmt     := rendered statement form, e.g. ASGNI(ADDRLP8[72], CNSTC[1])
    v} *)

exception Parse_error of string
(** Raised with a message naming the offending token and position. *)

val program_of_string : string -> Tree.program
val stmt_of_string : string -> Tree.stmt
val tree_of_string : string -> Tree.tree
