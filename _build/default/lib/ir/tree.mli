(** The tree intermediate representation proper.

    A program is a set of globals plus functions; a function body is a
    forest of statement trees, executed in order, exactly as lcc emits
    them: ARG trees precede the CALL that consumes them, conditional
    branches compare two subtrees and jump to a label, and assignments
    store a value subtree through an address subtree. *)

type tree =
  | Cnst of Op.ty * Op.width * int
      (** integer constant; width flags the literal's size class *)
  | Addrl of Op.width * int   (** address of local at frame offset *)
  | Addrf of Op.width * int   (** address of formal at parameter offset *)
  | Addrg of string           (** address of global symbol *)
  | Indir of Op.ty * tree     (** load of [ty] through an address *)
  | Binop of Op.ty * Op.binop * tree * tree
  | Neg of Op.ty * tree
  | Bcom of Op.ty * tree      (** bitwise complement *)
  | Cvt of Op.ty * Op.ty * tree  (** [Cvt (from_, to_, e)] *)
  | Call of Op.ty * tree      (** value-returning call through address tree *)

type stmt =
  | Sasgn of Op.ty * tree * tree   (** address, value *)
  | Sarg of Op.ty * tree           (** push outgoing argument *)
  | Scall of Op.ty * tree          (** call for effect (result dropped) *)
  | Scnd of Op.relop * Op.ty * tree * tree * string
      (** conditional branch to label when the relation holds *)
  | Sjump of string
  | Slabel of string
  | Sret of Op.ty * tree option

type func = {
  fname : string;
  formals : (string * Op.ty) list;
  frame_size : int;   (** bytes of locals *)
  body : stmt list;
}

type global = {
  gname : string;
  gsize : int;                (** bytes *)
  ginit : int list option;    (** optional byte initializer *)
}

type program = { globals : global list; funcs : func list }

val cnst : int -> tree
(** Integer constant with automatically assigned width class. *)

val addrl : int -> tree
val addrf : int -> tree

val tree_ty : tree -> Op.ty
(** Result type of a tree. *)

val tree_size : tree -> int
(** Number of operator nodes. *)

val stmt_size : stmt -> int
val func_size : func -> int
val program_size : program -> int
(** Total operator nodes across all function bodies. *)

val iter_trees_stmt : (tree -> unit) -> stmt -> unit
(** Apply to each root subtree of the statement (not recursively into
    trees; use {!iter_nodes} for that). *)

val iter_nodes : (tree -> unit) -> tree -> unit
(** Prefix-order visit of every node of a tree. *)

val map_stmts : (stmt -> stmt) -> program -> program

val find_func : program -> string -> func option

val equal_tree : tree -> tree -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_program : program -> program -> bool
