type issue = { where : string; what : string }

let width_ok w v =
  match w with
  | Op.W8 -> v >= -128 && v <= 127
  | Op.W16 -> v >= -32768 && v <= 32767
  | Op.W32 -> true

let check_program (p : Tree.program) =
  let issues = ref [] in
  let problem where what = issues := { where; what } :: !issues in
  (* unique function names *)
  let fnames = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem fnames f.Tree.fname then
        problem f.Tree.fname "duplicate function name"
      else Hashtbl.add fnames f.Tree.fname ())
    p.funcs;
  let known_symbol = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.replace known_symbol g.Tree.gname ()) p.globals;
  List.iter (fun f -> Hashtbl.replace known_symbol f.Tree.fname ()) p.funcs;
  (* runtime-provided builtins are always in scope *)
  List.iter
    (fun b -> Hashtbl.replace known_symbol b ())
    [ "putchar"; "getchar"; "print_int"; "abort" ];
  let check_func f =
    let where = f.Tree.fname in
    let defined = Hashtbl.create 16 in
    let used = ref [] in
    List.iter
      (fun s ->
        match s with
        | Tree.Slabel l ->
          if Hashtbl.mem defined l then problem where ("label defined twice: " ^ l)
          else Hashtbl.add defined l ()
        | Tree.Sjump l -> used := l :: !used
        | Tree.Scnd (_, _, _, _, l) -> used := l :: !used
        | _ -> ())
      f.Tree.body;
    List.iter
      (fun l ->
        if not (Hashtbl.mem defined l) then
          problem where ("branch to undefined label: " ^ l))
      !used;
    let check_tree t =
      Tree.iter_nodes
        (fun n ->
          match n with
          | Tree.Cnst (_, w, v) ->
            if not (width_ok w v) then
              problem where (Printf.sprintf "constant %d exceeds width class" v);
            if v < -0x80000000 || v > 0x7FFFFFFF then
              problem where (Printf.sprintf "constant %d exceeds 32 bits" v)
          | Tree.Addrl (w, off) ->
            if not (width_ok w off) then
              problem where (Printf.sprintf "local offset %d exceeds width class" off);
            if off < 0 || off >= max 1 f.Tree.frame_size then
              problem where
                (Printf.sprintf "local offset %d outside frame of %d bytes" off
                   f.Tree.frame_size)
          | Tree.Addrf (w, off) ->
            if not (width_ok w off) then
              problem where (Printf.sprintf "formal offset %d exceeds width class" off)
          | Tree.Addrg sym ->
            if not (Hashtbl.mem known_symbol sym) then
              problem where ("reference to unknown symbol: " ^ sym)
          | _ -> ())
        t
    in
    List.iter
      (fun s ->
        Tree.iter_trees_stmt check_tree s;
        match s with
        | Tree.Sret (Op.V, Some _) -> problem where "void return with a value"
        | Tree.Sret (ty, None) when ty <> Op.V ->
          problem where "valueless return with non-void type"
        | _ -> ())
      f.Tree.body
  in
  List.iter check_func p.funcs;
  List.rev !issues

let check_exn p =
  match check_program p with
  | [] -> ()
  | issues ->
    let msgs =
      List.map (fun i -> Printf.sprintf "%s: %s" i.where i.what) issues
    in
    failwith
      (Printf.sprintf "IR validation failed (%d issues):\n%s"
         (List.length issues)
         (String.concat "\n" msgs))
