(** Textual rendering of the IR in the paper's lcc style, e.g.

    {v ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]),CNSTC[1])) v}

    Width-suffixed literal operators print as in the paper: the 8-bit
    variant of CNST prints as CNSTC, 16-bit as CNSTS; ADDRLP carries an
    explicit 8/16 suffix. *)

val tree_to_string : Tree.tree -> string
val stmt_to_string : Tree.stmt -> string
val func_to_string : Tree.func -> string
val program_to_string : Tree.program -> string

val pp_stmt : Format.formatter -> Tree.stmt -> unit
val pp_program : Format.formatter -> Tree.program -> unit
