lib/ir/validate.mli: Tree
