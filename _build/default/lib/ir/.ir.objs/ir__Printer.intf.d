lib/ir/printer.mli: Format Tree
