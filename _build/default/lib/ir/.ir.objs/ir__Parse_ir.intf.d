lib/ir/parse_ir.mli: Tree
