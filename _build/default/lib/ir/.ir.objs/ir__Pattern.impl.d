lib/ir/pattern.ml: Array Buffer Char Hashtbl List Op Printf Stdlib String Tree
