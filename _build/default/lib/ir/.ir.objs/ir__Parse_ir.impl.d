lib/ir/parse_ir.ml: List Op Printf String Tree
