lib/ir/pattern.mli: Op Tree
