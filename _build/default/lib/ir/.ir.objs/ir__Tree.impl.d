lib/ir/tree.ml: List Op
