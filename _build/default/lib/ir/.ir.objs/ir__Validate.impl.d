lib/ir/validate.ml: Hashtbl List Op Printf String Tree
