lib/ir/op.mli:
