lib/ir/tree.mli: Op
