lib/ir/op.ml:
