lib/ir/printer.ml: Format List Op Printf String Tree
