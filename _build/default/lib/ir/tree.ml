type tree =
  | Cnst of Op.ty * Op.width * int
  | Addrl of Op.width * int
  | Addrf of Op.width * int
  | Addrg of string
  | Indir of Op.ty * tree
  | Binop of Op.ty * Op.binop * tree * tree
  | Neg of Op.ty * tree
  | Bcom of Op.ty * tree
  | Cvt of Op.ty * Op.ty * tree
  | Call of Op.ty * tree

type stmt =
  | Sasgn of Op.ty * tree * tree
  | Sarg of Op.ty * tree
  | Scall of Op.ty * tree
  | Scnd of Op.relop * Op.ty * tree * tree * string
  | Sjump of string
  | Slabel of string
  | Sret of Op.ty * tree option

type func = {
  fname : string;
  formals : (string * Op.ty) list;
  frame_size : int;
  body : stmt list;
}

type global = { gname : string; gsize : int; ginit : int list option }

type program = { globals : global list; funcs : func list }

let cnst v = Cnst (Op.I, Op.width_for v, v)
let addrl off = Addrl (Op.width_for off, off)
let addrf off = Addrf (Op.width_for off, off)

let tree_ty = function
  | Cnst (ty, _, _) -> ty
  | Addrl _ | Addrf _ | Addrg _ -> Op.P
  | Indir (ty, _) -> ty
  | Binop (ty, _, _, _) -> ty
  | Neg (ty, _) -> ty
  | Bcom (ty, _) -> ty
  | Cvt (_, to_, _) -> to_
  | Call (ty, _) -> ty

let rec tree_size = function
  | Cnst _ | Addrl _ | Addrf _ | Addrg _ -> 1
  | Indir (_, t) | Neg (_, t) | Bcom (_, t) | Cvt (_, _, t) | Call (_, t) ->
    1 + tree_size t
  | Binop (_, _, a, b) -> 1 + tree_size a + tree_size b

let stmt_size = function
  | Sasgn (_, a, v) -> 1 + tree_size a + tree_size v
  | Sarg (_, t) | Scall (_, t) -> 1 + tree_size t
  | Scnd (_, _, a, b, _) -> 1 + tree_size a + tree_size b
  | Sjump _ | Slabel _ -> 1
  | Sret (_, None) -> 1
  | Sret (_, Some t) -> 1 + tree_size t

let func_size f = List.fold_left (fun acc s -> acc + stmt_size s) 0 f.body

let program_size p = List.fold_left (fun acc f -> acc + func_size f) 0 p.funcs

let iter_trees_stmt f = function
  | Sasgn (_, a, v) ->
    f a;
    f v
  | Sarg (_, t) | Scall (_, t) -> f t
  | Scnd (_, _, a, b, _) ->
    f a;
    f b
  | Sjump _ | Slabel _ | Sret (_, None) -> ()
  | Sret (_, Some t) -> f t

let rec iter_nodes f t =
  f t;
  match t with
  | Cnst _ | Addrl _ | Addrf _ | Addrg _ -> ()
  | Indir (_, a) | Neg (_, a) | Bcom (_, a) | Cvt (_, _, a) | Call (_, a) ->
    iter_nodes f a
  | Binop (_, _, a, b) ->
    iter_nodes f a;
    iter_nodes f b

let map_stmts f p =
  { p with funcs = List.map (fun fn -> { fn with body = List.map f fn.body }) p.funcs }

let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs

let equal_tree (a : tree) (b : tree) = a = b
let equal_stmt (a : stmt) (b : stmt) = a = b
let equal_program (a : program) (b : program) = a = b
