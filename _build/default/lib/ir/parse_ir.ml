exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some '#' ->
    (* comment to end of line *)
    while peek st <> None && peek st <> Some '\n' do advance st done;
    skip_ws st
  | _ -> ()

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '$' || c = '.'

let ident st =
  skip_ws st;
  let start = st.pos in
  while
    match peek st with Some c when is_ident_char c -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then error st "expected identifier";
  String.sub st.src start (st.pos - start)

let int_lit st =
  skip_ws st;
  let start = st.pos in
  (match peek st with Some '-' -> advance st | _ -> ());
  while match peek st with Some c when c >= '0' && c <= '9' -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then error st "expected integer";
  int_of_string (String.sub st.src start (st.pos - start))

let bracketed_sym st =
  expect st '[';
  let s = ident st in
  expect st ']';
  s

let bracketed_int st =
  expect st '[';
  let v = int_lit st in
  expect st ']';
  v

let ty_of_char st = function
  | 'I' -> Op.I
  | 'C' -> Op.C
  | 'S' -> Op.S
  | 'P' -> Op.P
  | 'V' -> Op.V
  | _ -> error st "bad type suffix"

(* Mnemonic suffix parsing: an operator name like "ASGNI" or "ADDRLP8". *)

let split_mnemonic st name =
  (* Returns (stem, trailing characters). *)
  ignore st;
  name

let rec parse_tree st =
  skip_ws st;
  let name = ident st in
  parse_tree_named st name

and parse_tree_named st name =
  let tree_with_child stem k =
    ignore stem;
    expect st '(';
    let a = parse_tree st in
    expect st ')';
    k a
  in
  let binop_children k =
    expect st '(';
    let a = parse_tree st in
    expect st ',';
    let b = parse_tree st in
    expect st ')';
    k a b
  in
  match name with
  | "CNSTC" -> Tree.Cnst (Op.I, Op.W8, bracketed_int st)
  | "CNSTS" -> Tree.Cnst (Op.I, Op.W16, bracketed_int st)
  | "CNSTI" -> Tree.Cnst (Op.I, Op.W32, bracketed_int st)
  | "CNSTP" -> Tree.Cnst (Op.P, Op.W32, bracketed_int st)
  | "ADDRLP" -> Tree.Addrl (Op.W32, bracketed_int st)
  | "ADDRLP8" -> Tree.Addrl (Op.W8, bracketed_int st)
  | "ADDRLP16" -> Tree.Addrl (Op.W16, bracketed_int st)
  | "ADDRFP" -> Tree.Addrf (Op.W32, bracketed_int st)
  | "ADDRFP8" -> Tree.Addrf (Op.W8, bracketed_int st)
  | "ADDRFP16" -> Tree.Addrf (Op.W16, bracketed_int st)
  | "ADDRGP" -> Tree.Addrg (bracketed_sym st)
  | _ when String.length name >= 6 && String.sub name 0 5 = "INDIR" ->
    let ty = ty_of_char st name.[5] in
    tree_with_child "INDIR" (fun a -> Tree.Indir (ty, a))
  | _ when String.length name >= 4 && String.sub name 0 3 = "NEG" ->
    let ty = ty_of_char st name.[3] in
    tree_with_child "NEG" (fun a -> Tree.Neg (ty, a))
  | _ when String.length name >= 5 && String.sub name 0 4 = "BCOM" ->
    let ty = ty_of_char st name.[4] in
    tree_with_child "BCOM" (fun a -> Tree.Bcom (ty, a))
  | _ when String.length name = 4 && String.sub name 0 2 = "CV" ->
    let f = ty_of_char st name.[2] in
    let t = ty_of_char st name.[3] in
    tree_with_child "CV" (fun a -> Tree.Cvt (f, t, a))
  | _ when String.length name >= 5 && String.sub name 0 4 = "CALL" ->
    let ty = ty_of_char st name.[4] in
    tree_with_child "CALL" (fun a -> Tree.Call (ty, a))
  | _ -> (
    (* binary operators: ADD, SUB, ... with a trailing type char *)
    let stem = String.sub name 0 (String.length name - 1) in
    let tyc = name.[String.length name - 1] in
    let binop_of = function
      | "ADD" -> Some Op.Add
      | "SUB" -> Some Op.Sub
      | "MUL" -> Some Op.Mul
      | "DIV" -> Some Op.Div
      | "MOD" -> Some Op.Mod
      | "BAND" -> Some Op.Band
      | "BOR" -> Some Op.Bor
      | "BXOR" -> Some Op.Bxor
      | "LSH" -> Some Op.Lsh
      | "RSH" -> Some Op.Rsh
      | _ -> None
    in
    match binop_of stem with
    | Some op ->
      let ty = ty_of_char st tyc in
      binop_children (fun a b -> Tree.Binop (ty, op, a, b))
    | None -> error st (Printf.sprintf "unknown tree operator %s" (split_mnemonic st name)))

let relop_of_stem = function
  | "EQ" -> Some Op.Eq
  | "NE" -> Some Op.Ne
  | "LT" -> Some Op.Lt
  | "LE" -> Some Op.Le
  | "GT" -> Some Op.Gt
  | "GE" -> Some Op.Ge
  | _ -> None

let parse_stmt st =
  skip_ws st;
  let name = ident st in
  match name with
  | "JUMPV" -> Tree.Sjump (bracketed_sym st)
  | "LABELV" -> Tree.Slabel (bracketed_sym st)
  | "RETV" -> Tree.Sret (Op.V, None)
  | _ when String.length name >= 5 && String.sub name 0 4 = "ASGN" ->
    let ty = ty_of_char st name.[4] in
    expect st '(';
    let a = parse_tree st in
    expect st ',';
    let v = parse_tree st in
    expect st ')';
    Tree.Sasgn (ty, a, v)
  | _ when String.length name >= 4 && String.sub name 0 3 = "ARG" ->
    let ty = ty_of_char st name.[3] in
    expect st '(';
    let t = parse_tree st in
    expect st ')';
    Tree.Sarg (ty, t)
  | _ when String.length name >= 5 && String.sub name 0 4 = "CALL" ->
    let ty = ty_of_char st name.[4] in
    expect st '(';
    let t = parse_tree st in
    expect st ')';
    Tree.Scall (ty, t)
  | _ when String.length name >= 4 && String.sub name 0 3 = "RET" ->
    let ty = ty_of_char st name.[3] in
    expect st '(';
    let t = parse_tree st in
    expect st ')';
    Tree.Sret (ty, Some t)
  | _ -> (
    let stem = String.sub name 0 (String.length name - 1) in
    let tyc = name.[String.length name - 1] in
    match relop_of_stem stem with
    | Some rel ->
      let ty = ty_of_char st tyc in
      let lbl = bracketed_sym st in
      expect st '(';
      let a = parse_tree st in
      expect st ',';
      let b = parse_tree st in
      expect st ')';
      Tree.Scnd (rel, ty, a, b, lbl)
    | None -> error st (Printf.sprintf "unknown statement %s" name))

let parse_ty st =
  skip_ws st;
  match peek st with
  | Some c ->
    advance st;
    ty_of_char st c
  | None -> error st "expected type"

let parse_formals st =
  skip_ws st;
  if peek st = Some ')' then []
  else begin
    let rec go acc =
      let n = ident st in
      expect st ':';
      let ty = parse_ty st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        go ((n, ty) :: acc)
      | _ -> List.rev ((n, ty) :: acc)
    in
    go []
  end

let parse_function st =
  let fname = ident st in
  expect st '(';
  let formals = parse_formals st in
  expect st ')';
  skip_ws st;
  let kw = ident st in
  if kw <> "frame" then error st "expected 'frame'";
  let frame_size = int_lit st in
  expect st '{';
  let body = ref [] in
  let rec stmts () =
    skip_ws st;
    if peek st = Some '}' then advance st
    else begin
      body := parse_stmt st :: !body;
      stmts ()
    end
  in
  stmts ();
  { Tree.fname; formals; frame_size; body = List.rev !body }

let parse_global st =
  let gname = ident st in
  let gsize = int_lit st in
  skip_ws st;
  let ginit =
    if peek st = Some '=' then begin
      advance st;
      let rec go acc =
        let v = int_lit st in
        skip_ws st;
        if peek st = Some ',' then begin
          advance st;
          go (v :: acc)
        end
        else List.rev (v :: acc)
      in
      Some (go [])
    end
    else None
  in
  { Tree.gname; gsize; ginit }

let program_of_string src =
  let st = { src; pos = 0 } in
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    skip_ws st;
    if peek st = None then ()
    else begin
      (match ident st with
      | "global" -> globals := parse_global st :: !globals
      | "function" -> funcs := parse_function st :: !funcs
      | other -> error st (Printf.sprintf "expected 'global' or 'function', got %s" other));
      go ()
    end
  in
  go ();
  { Tree.globals = List.rev !globals; funcs = List.rev !funcs }

let stmt_of_string src =
  let st = { src; pos = 0 } in
  let s = parse_stmt st in
  skip_ws st;
  if peek st <> None then error st "trailing input after statement";
  s

let tree_of_string src =
  let st = { src; pos = 0 } in
  let t = parse_tree st in
  skip_ws st;
  if peek st <> None then error st "trailing input after tree";
  t
