type ty = I | C | S | P | V

let ty_to_string = function I -> "I" | C -> "C" | S -> "S" | P -> "P" | V -> "V"
let ty_size = function I -> 4 | C -> 1 | S -> 2 | P -> 4 | V -> 0

type width = W8 | W16 | W32

let width_for v =
  if v >= -128 && v <= 127 then W8
  else if v >= -32768 && v <= 32767 then W16
  else W32

let width_suffix = function W8 -> "8" | W16 -> "16" | W32 -> ""

type binop = Add | Sub | Mul | Div | Mod | Band | Bor | Bxor | Lsh | Rsh

type relop = Eq | Ne | Lt | Le | Gt | Ge

let binop_to_string = function
  | Add -> "ADD"
  | Sub -> "SUB"
  | Mul -> "MUL"
  | Div -> "DIV"
  | Mod -> "MOD"
  | Band -> "BAND"
  | Bor -> "BOR"
  | Bxor -> "BXOR"
  | Lsh -> "LSH"
  | Rsh -> "RSH"

let relop_to_string = function
  | Eq -> "EQ"
  | Ne -> "NE"
  | Lt -> "LT"
  | Le -> "LE"
  | Gt -> "GT"
  | Ge -> "GE"

let negate_relop = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

type lit_class =
  | Lc_addrl of width
  | Lc_addrf of width
  | Lc_addrg
  | Lc_cnst of width
  | Lc_label

let lit_class_name = function
  | Lc_addrl w -> "ADDRL" ^ width_suffix w
  | Lc_addrf w -> "ADDRF" ^ width_suffix w
  | Lc_addrg -> "ADDRG"
  | Lc_cnst w -> "CNST" ^ width_suffix w
  | Lc_label -> "LABEL"

let all_lit_classes =
  [
    Lc_addrl W8; Lc_addrl W16; Lc_addrl W32;
    Lc_addrf W8; Lc_addrf W16; Lc_addrf W32;
    Lc_addrg;
    Lc_cnst W8; Lc_cnst W16; Lc_cnst W32;
    Lc_label;
  ]

let compare_lit_class a b = compare a b
