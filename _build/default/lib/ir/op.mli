(** Operator vocabulary of the lcc-style tree intermediate representation.

    Follows the paper's presentation (§3): a stack-based tree IR in which
    literal operands appear in square brackets, and literal-bearing
    operators come in width-suffixed variants (e.g. [ADDRLP8]) flagging
    literals that fit in 8 or 16 bits. *)

type ty =
  | I   (** 32-bit signed integer *)
  | C   (** 8-bit character *)
  | S   (** 16-bit short *)
  | P   (** pointer (32-bit in this VM) *)
  | V   (** void — calls for effect *)

val ty_to_string : ty -> string
val ty_size : ty -> int
(** Size in bytes of a value of this type; [V] has size 0. *)

type width = W8 | W16 | W32
(** Width class of a literal operand, per the paper's 8/16-suffixed ops. *)

val width_for : int -> width
(** Smallest width whose signed range contains the value. *)

val width_suffix : width -> string
(** "8", "16" or "" — [W32] is the unsuffixed base form. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor
  | Lsh | Rsh

type relop = Eq | Ne | Lt | Le | Gt | Ge

val binop_to_string : binop -> string
(** lcc-style mnemonic stem, e.g. "ADD". *)

val relop_to_string : relop -> string
val negate_relop : relop -> relop

(** Literal stream classes for the wire format: every literal operand in
    the program belongs to exactly one class, and the wire compressor
    emits one stream per class (§3 step 2). *)
type lit_class =
  | Lc_addrl of width   (** local frame offsets *)
  | Lc_addrf of width   (** formal (parameter) offsets *)
  | Lc_addrg            (** global symbol names *)
  | Lc_cnst of width    (** integer constants *)
  | Lc_label            (** branch/jump/label-definition targets *)

val lit_class_name : lit_class -> string
val all_lit_classes : lit_class list

val compare_lit_class : lit_class -> lit_class -> int
