(** Patternization of IR trees (§2, §3 of the paper).

    A pattern is a statement tree in which every literal operand has been
    replaced by a wildcard. [of_stmt] splits a statement into its pattern
    plus the literal values read off in prefix order, each tagged with its
    literal-stream class; [to_stmt] reassembles. Patterns serialize to a
    compact byte string, one byte per operator node in prefix order, which
    is both the wire format's on-the-wire shape for novel patterns and the
    hash key used to recognize repeated patterns. *)

type lit =
  | Lint of int      (** numeric literal: constant, frame offset *)
  | Lsym of string   (** symbolic literal: global name or label *)

type pat =
  | Pcnst of Op.ty * Op.width
  | Paddrl of Op.width
  | Paddrf of Op.width
  | Paddrg
  | Pindir of Op.ty * pat
  | Pbinop of Op.ty * Op.binop * pat * pat
  | Pneg of Op.ty * pat
  | Pbcom of Op.ty * pat
  | Pcvt of Op.ty * Op.ty * pat
  | Pcall of Op.ty * pat

type spat =
  | Pasgn of Op.ty * pat * pat
  | Parg of Op.ty * pat
  | Pscall of Op.ty * pat
  | Pscnd of Op.relop * Op.ty * pat * pat
  | Pjump
  | Plabel
  | Pret of Op.ty * pat option

val of_stmt : Tree.stmt -> spat * (Op.lit_class * lit) list
(** Pattern plus literals in prefix order. *)

val to_stmt : spat -> (Op.lit_class * lit) list -> Tree.stmt
(** Inverse of {!of_stmt}. @raise Failure if the literal list does not
    match the pattern's wildcard slots. *)

val lit_slots : spat -> Op.lit_class list
(** The classes of the pattern's wildcard slots, in prefix order. *)

val spat_to_string : spat -> string
(** Paper-style rendering with [*] for wildcards, e.g.
    [ASGNI(ADDRLP8[*], SUBI(INDIRI(ADDRLP8[*]),CNSTC[*]))]. *)

val encode : spat -> string
(** One byte per operator node, prefix order. *)

val decode : string -> int ref -> spat
(** Read one pattern at [!pos], advancing [pos].
    @raise Failure on malformed input. *)

val opcode_count : int
(** Size of the node-operator alphabet (exported for stream headers). *)

val compare : spat -> spat -> int
val equal : spat -> spat -> bool
val hash : spat -> int
