let cnst_name ty w =
  match (ty, w) with
  | _, Op.W8 -> "CNSTC"
  | _, Op.W16 -> "CNSTS"
  | Op.P, Op.W32 -> "CNSTP"
  | _, Op.W32 -> "CNSTI"

let rec tree_to_string t =
  match t with
  | Tree.Cnst (ty, w, v) -> Printf.sprintf "%s[%d]" (cnst_name ty w) v
  | Tree.Addrl (w, off) ->
    Printf.sprintf "ADDRLP%s[%d]" (Op.width_suffix w) off
  | Tree.Addrf (w, off) ->
    Printf.sprintf "ADDRFP%s[%d]" (Op.width_suffix w) off
  | Tree.Addrg name -> Printf.sprintf "ADDRGP[%s]" name
  | Tree.Indir (ty, a) ->
    Printf.sprintf "INDIR%s(%s)" (Op.ty_to_string ty) (tree_to_string a)
  | Tree.Binop (ty, op, a, b) ->
    Printf.sprintf "%s%s(%s,%s)" (Op.binop_to_string op) (Op.ty_to_string ty)
      (tree_to_string a) (tree_to_string b)
  | Tree.Neg (ty, a) ->
    Printf.sprintf "NEG%s(%s)" (Op.ty_to_string ty) (tree_to_string a)
  | Tree.Bcom (ty, a) ->
    Printf.sprintf "BCOM%s(%s)" (Op.ty_to_string ty) (tree_to_string a)
  | Tree.Cvt (from_, to_, a) ->
    Printf.sprintf "CV%s%s(%s)" (Op.ty_to_string from_) (Op.ty_to_string to_)
      (tree_to_string a)
  | Tree.Call (ty, a) ->
    Printf.sprintf "CALL%s(%s)" (Op.ty_to_string ty) (tree_to_string a)

let stmt_to_string s =
  match s with
  | Tree.Sasgn (ty, a, v) ->
    Printf.sprintf "ASGN%s(%s, %s)" (Op.ty_to_string ty) (tree_to_string a)
      (tree_to_string v)
  | Tree.Sarg (ty, t) ->
    Printf.sprintf "ARG%s(%s)" (Op.ty_to_string ty) (tree_to_string t)
  | Tree.Scall (ty, t) ->
    Printf.sprintf "CALL%s(%s)" (Op.ty_to_string ty) (tree_to_string t)
  | Tree.Scnd (rel, ty, a, b, lbl) ->
    Printf.sprintf "%s%s[%s](%s,%s)" (Op.relop_to_string rel)
      (Op.ty_to_string ty) lbl (tree_to_string a) (tree_to_string b)
  | Tree.Sjump lbl -> Printf.sprintf "JUMPV[%s]" lbl
  | Tree.Slabel lbl -> Printf.sprintf "LABELV[%s]" lbl
  | Tree.Sret (_, None) -> "RETV"
  | Tree.Sret (ty, Some t) ->
    Printf.sprintf "RET%s(%s)" (Op.ty_to_string ty) (tree_to_string t)

let func_to_string f =
  let formals =
    f.Tree.formals
    |> List.map (fun (n, ty) -> Printf.sprintf "%s:%s" n (Op.ty_to_string ty))
    |> String.concat ", "
  in
  let body = List.map (fun s -> "  " ^ stmt_to_string s) f.Tree.body in
  Printf.sprintf "function %s(%s) frame %d {\n%s\n}" f.Tree.fname formals
    f.Tree.frame_size
    (String.concat "\n" body)

let program_to_string p =
  let globals =
    List.map
      (fun g ->
        Printf.sprintf "global %s %d%s" g.Tree.gname g.Tree.gsize
          (match g.Tree.ginit with
          | None -> ""
          | Some bytes ->
            " = " ^ String.concat "," (List.map string_of_int bytes)))
      p.Tree.globals
  in
  let funcs = List.map func_to_string p.Tree.funcs in
  String.concat "\n" (globals @ funcs) ^ "\n"

let pp_stmt fmt s = Format.pp_print_string fmt (stmt_to_string s)
let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)
