(** Well-formedness checks on IR programs.

    Run after the frontend and after any decompressor to catch
    structurally broken programs early (the wire decompressor in
    particular must reproduce a valid program bit-for-bit). *)

type issue = { where : string; what : string }

val check_program : Tree.program -> issue list
(** Empty list = well-formed. Checks performed:
    - every label referenced by a branch/jump is defined in the same
      function, and no label is defined twice;
    - literal width classes are consistent with their values
      (an [ADDRLP8] offset really fits in 8 bits, etc.);
    - frame offsets of ADDRL are within [0, frame_size);
    - every ADDRG symbol names a global or function of the program;
    - function names are unique;
    - a [Sret] with a value does not use type [V], and [Sret (V, None)]
      is the only void return form. *)

val check_exn : Tree.program -> unit
(** @raise Failure with a readable summary when issues exist. *)
