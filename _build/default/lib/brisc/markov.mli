(** Order-1 semi-static Markov opcode coder (§4.3).

    Every dictionary entry gets, per {e context}, a one-byte code.
    Contexts are: a distinguished basic-block-start context (used at
    function entry, at branch-target labels, and at call return points,
    so the stream stays decodable from any block boundary), plus one
    context per dictionary entry (the previous instruction). Codes are
    assigned per context by ascending entry id — every code costs one
    byte whatever its value, and a sorted successor set delta-encodes
    compactly in the container.

    The paper splits a pattern whose context has more than 256
    successors; we keep the context intact and use code 255 as an escape
    prefix instead (an equivalent, simpler-to-decode realization of the
    same 8-bit constraint — documented in DESIGN.md). *)

type t = {
  succ : int array array;
      (** [succ.(ctx)] lists entry ids in code order; ctx 0 is the
          block-start context, ctx (e+1) is "previous entry was e". *)
}

val bb_ctx : int
(** The block-start context id (0). *)

val ctx_of_entry : int -> int

val build : n_entries:int -> (int * int) list -> t
(** [build ~n_entries transitions] from observed (context, entry) pairs. *)

val code_of : t -> ctx:int -> int -> int list
(** Byte(s) encoding the entry in this context (escape-prefixed when the
    code is >= 255). *)

val entry_of : t -> ctx:int -> (unit -> int) -> int
(** Decode an entry id, pulling opcode bytes via the callback. *)

val max_successors : t -> int
(** Largest successor set across contexts (the paper reports <= 244 for
    lcc). *)

val write : Buffer.t -> t -> unit
val read : string -> int ref -> t
