(** Greedy BRISC dictionary construction (§4.3).

    The compressor starts from the base instruction patterns the input
    uses (plus the [epi] macro), scans the program repeatedly generating
    candidate patterns by one-field operand specialization and adjacent
    opcode combination (taking the cross product of each side's
    augmented operand-specialized set), ranks candidates in a heap by

      B  =  P − W

    where [P] is the estimated program-size reduction minus the
    dictionary entry's own file cost and [W] is the decompressor
    working-set cost (average of the x86-like and PowerPC-like native
    template sizes), adds the [K] best per pass, and rewrites the
    program to use them. Construction stops after a pass that yields
    fewer than [K] candidates with positive benefit.

    In abundant-memory mode ([ignore_w]) the benefit is just [P], the
    variant the paper mentions for hosts where decompressor table space
    is free; the ablation bench measures the difference. *)

type item = {
  mutable pat : int;               (** dictionary index *)
  mutable insts : Vm.Isa.instr list;  (** original VM instructions (1..4) *)
  mutable live : bool;             (** false once merged into a neighbour *)
  block : int;                     (** basic-block id within the function *)
}

type compiled_func = {
  cf_name : string;
  items : item array;
  labels : (string * int) list;
      (** label name -> item index it precedes (item indices into
          [items]; dead items are skipped at emission) *)
}

type t = {
  entries : Pat.pat array;         (** the dictionary; base entries first *)
  base_count : int;                (** how many are base patterns + epi *)
  funcs : compiled_func list;
  globals : (string * int * int list option) list;
  candidates_tested : int;         (** §4.3 reports 93,211 for gcc *)
  passes : int;
}

val build :
  ?k:int -> ?ignore_w:bool -> ?max_passes:int -> Vm.Isa.vprogram -> t
(** Run the compressor on a VM program. [k] defaults to the paper's 20. *)

val apply_dictionary : t -> Vm.Isa.vprogram -> t
(** Re-encode a different program with an already-built dictionary and
    no further candidate search (the paper applies the gcc dictionary to
    the salt/pepper example). Items that match no entry keep their base
    pattern (base entries for missing shapes are appended). *)

val compressed_code_bytes : t -> int
(** Operand+opcode bytes of all live items (excluding dictionary and
    header). *)

val dictionary_bytes : t -> int
(** File cost of the non-base dictionary entries. *)

val item_bytes : t -> item -> int
val stats_to_string : t -> string
