(** Direct interpretation of compressed BRISC code (§4): no
    decompression pass — every dispatch decodes the instruction at the
    current byte offset through the Markov tables and executes it in
    place. Branches jump to label byte offsets (the random access the
    byte-aligned, block-addressable encoding exists to provide).

    Must be observationally equivalent to [Vm.Interp] on the source
    program; the test suite checks this across the corpus. *)

exception Runtime_error of string

type result = {
  exit_code : int;
  output : string;
  dispatches : int;   (** BRISC instructions decoded+executed *)
  vm_steps : int;     (** underlying VM instructions executed *)
}

val run :
  ?mem_size:int -> ?input:string -> ?fuel:int -> ?entry:string ->
  ?on_dispatch:(int -> int -> int -> unit) ->
  Emit.image -> result
(** @raise Runtime_error on traps. [fuel] bounds [vm_steps].
    [on_dispatch] fires per decoded instruction with (function index,
    byte offset, encoded length) — the fetch trace the cache scenario
    consumes. *)
