(** BRISC just-in-time native code generation (§4.5).

    Decodes the compressed stream linearly and expands each dictionary
    entry through the VM -> native compiler, using a per-entry template
    cache: an entry's native skeleton is compiled once and subsequent
    occurrences only substitute operand fields. This is the mechanism
    behind the paper's "2.5 MB/s of produced Pentium code" claim; the
    benchmark harness measures our rate with Bechamel. *)

val compile : Emit.image -> Native.Mach.nprogram
(** Whole-program JIT: the result runs on [Native.Sim] and must be
    observationally equivalent to interpreting the original program. *)

val compile_with_stats : Emit.image -> Native.Mach.nprogram * int
(** Also returns the produced native code bytes (the JIT-rate
    numerator). *)
