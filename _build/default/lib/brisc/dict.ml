type item = {
  mutable pat : int;
  mutable insts : Vm.Isa.instr list;
  mutable live : bool;
  block : int;
}

type compiled_func = {
  cf_name : string;
  items : item array;
  labels : (string * int) list;
}

type t = {
  entries : Pat.pat array;
  base_count : int;
  funcs : compiled_func list;
  globals : (string * int * int list option) list;
  candidates_tested : int;
  passes : int;
}

let item_pat_bytes entries it = Pat.encoded_bytes entries.(it.pat)

(* ---- initial itemization ---- *)

type builder = {
  mutable entry_list : Pat.pat list;   (* reversed *)
  mutable entry_count : int;
  entry_of_key : (string, int) Hashtbl.t;
}

let add_entry b p =
  let k = Pat.key p in
  match Hashtbl.find_opt b.entry_of_key k with
  | Some i -> i
  | None ->
    let i = b.entry_count in
    b.entry_list <- p :: b.entry_list;
    b.entry_count <- i + 1;
    Hashtbl.add b.entry_of_key k i;
    i

let itemize_func b (f : Vm.Isa.vfunc) =
  let items = ref [] in
  let labels = ref [] in
  let idx = ref 0 in
  let block = ref 0 in
  List.iter
    (fun (i : Vm.Isa.instr) ->
      match i with
      | Vm.Isa.Label l ->
        (* labels start a new basic block *)
        incr block;
        labels := (l, !idx) :: !labels
      | _ ->
        let base = Pat.base_pattern i in
        let pid = add_entry b base in
        items := { pat = pid; insts = [ i ]; live = true; block = !block } :: !items;
        incr idx)
    f.Vm.Isa.code;
  { cf_name = f.Vm.Isa.name; items = Array.of_list (List.rev !items);
    labels = List.rev !labels }

(* ---- candidate generation ---- *)

type cand = { cpat : Pat.pat; mutable savings : int }

(* augmented operand-specialized set: the pattern itself plus its
   one-field specializations against this occurrence's field values *)
let augmented entries it =
  let p = entries.(it.pat) in
  let values = Pat.wild_values p it.insts in
  let specs =
    List.filteri (fun _ _ -> true) values
    |> List.mapi (fun i v -> Pat.specialize p i v)
    |> List.filter_map (fun x -> x)
  in
  p :: specs

(* ---- main pass loop ---- *)

let build ?(k = 20) ?(ignore_w = false) ?(max_passes = 40) (vp : Vm.Isa.vprogram) : t =
  let b =
    { entry_list = []; entry_count = 0; entry_of_key = Hashtbl.create 512 }
  in
  ignore (add_entry b Pat.epi);
  let funcs = List.map (itemize_func b) vp.Vm.Isa.funcs in
  let base_count = ref b.entry_count in
  (* the paper's compressor keeps a hash table of previously generated
     candidates; candidates_tested counts distinct candidates ever
     generated, as §4.3 reports (93,211 for gcc) *)
  let ever_generated : (string, unit) Hashtbl.t = Hashtbl.create 8192 in
  let candidates_tested = ref 0 in
  let passes = ref 0 in
  let finished = ref false in
  while not !finished && !passes < max_passes do
    incr passes;
    let entries = Array.of_list (List.rev b.entry_list) in
    (* Candidates are keyed by their rendered form: OCaml's polymorphic
       hash samples only a bounded prefix of a deep structure, which
       collides badly on patterns; the string key hashes fully. *)
    let cands : (string, cand) Hashtbl.t = Hashtbl.create 4096 in
    let consider pat saved =
      if saved > 0 then begin
        let key = Pat.key pat in
        if not (Hashtbl.mem b.entry_of_key key) then begin
          match Hashtbl.find_opt cands key with
          | Some c -> c.savings <- c.savings + saved
          | None ->
            if not (Hashtbl.mem ever_generated key) then begin
              Hashtbl.add ever_generated key ();
              incr candidates_tested
            end;
            Hashtbl.add cands key { cpat = pat; savings = saved }
        end
      end
    in
    (* scan: specializations and combinations *)
    List.iter
      (fun cf ->
        let n = Array.length cf.items in
        let rec next_live i = if i >= n then None
          else if cf.items.(i).live then Some i else next_live (i + 1)
        in
        let i = ref 0 in
        while !i < n do
          let it = cf.items.(!i) in
          if it.live then begin
            let cur_bytes = item_pat_bytes entries it in
            (* one-field specializations *)
            let p = entries.(it.pat) in
            let values = Pat.wild_values p it.insts in
            List.iteri
              (fun si v ->
                match Pat.specialize p si v with
                | Some sp -> consider sp (cur_bytes - Pat.encoded_bytes sp)
                | None -> ())
              values;
            (* combination with the next live item in the same block *)
            (match next_live (!i + 1) with
            | Some j when cf.items.(j).block = it.block ->
              let jt = cf.items.(j) in
              let j_bytes = item_pat_bytes entries jt in
              let total = cur_bytes + j_bytes in
              let lefts = augmented entries it in
              let rights = augmented entries jt in
              List.iter
                (fun lp ->
                  List.iter
                    (fun rp ->
                      match Pat.combine lp rp with
                      | Some cp -> consider cp (total - Pat.encoded_bytes cp)
                      | None -> ())
                    rights)
                lefts
            | _ -> ())
          end;
          incr i
        done)
      funcs;
    (* rank by benefit *)
    let heap =
      Support.Heap.create ~cmp:(fun (b1, _) (b2, _) -> compare (b1 : int) b2)
    in
    Hashtbl.iter
      (fun _ c ->
        let p_net = c.savings - Pat.dict_entry_bytes c.cpat in
        let w = if ignore_w then 0 else Pat.native_bytes c.cpat in
        let benefit = p_net - w in
        if benefit > 0 then Support.Heap.push heap (benefit, c.cpat))
      cands;
    let selected = ref [] in
    let rec take n =
      if n > 0 then
        match Support.Heap.pop heap with
        | Some (_, p) ->
          selected := p :: !selected;
          take (n - 1)
        | None -> ()
    in
    take k;
    let selected = List.rev !selected in
    if List.length selected < k then finished := true;
    if selected <> [] then begin
      let new_ids = List.map (fun p -> (add_entry b p, p)) selected in
      let entries = Array.of_list (List.rev b.entry_list) in
      (* rewrite, combinations first *)
      List.iter
        (fun cf ->
          let n = Array.length cf.items in
          let rec next_live i =
            if i >= n then None
            else if cf.items.(i).live then Some i
            else next_live (i + 1)
          in
          (* opcode combination: at most one new pattern applies per pair
             per pass *)
          let i = ref 0 in
          while !i < n do
            let it = cf.items.(!i) in
            (if it.live then
               match next_live (!i + 1) with
               | Some j when cf.items.(j).block = it.block ->
                 let jt = cf.items.(j) in
                 let joint = it.insts @ jt.insts in
                 let cur = item_pat_bytes entries it + item_pat_bytes entries jt in
                 let best = ref None in
                 List.iter
                   (fun (id, p) ->
                     if List.length p.Pat.parts > 1 && Pat.matches p joint then begin
                       let bytes = Pat.encoded_bytes p in
                       if
                         bytes < cur
                         &&
                         match !best with
                         | Some (_, bb) -> bytes < bb
                         | None -> true
                       then best := Some (id, bytes)
                     end)
                   new_ids;
                 (match !best with
                 | Some (id, _) ->
                   it.pat <- id;
                   it.insts <- joint;
                   jt.live <- false
                 | None -> ())
               | _ -> ());
            incr i
          done;
          (* operand specialization: switch items to cheaper new entries *)
          Array.iter
            (fun it ->
              if it.live then begin
                let cur = item_pat_bytes entries it in
                let best = ref None in
                List.iter
                  (fun (id, p) ->
                    if
                      List.length p.Pat.parts = List.length it.insts
                      && Pat.matches p it.insts
                    then begin
                      let bytes = Pat.encoded_bytes p in
                      if
                        bytes < cur
                        &&
                        match !best with
                        | Some (_, bb) -> bytes < bb
                        | None -> true
                      then best := Some (id, bytes)
                    end)
                  new_ids;
                match !best with
                | Some (id, _) -> it.pat <- id
                | None -> ()
              end)
            cf.items)
        funcs
    end
  done;
  {
    entries = Array.of_list (List.rev b.entry_list);
    base_count = !base_count;
    funcs;
    globals = vp.Vm.Isa.globals;
    candidates_tested = !candidates_tested;
    passes = !passes;
  }

(* ---- re-encoding with a fixed dictionary ---- *)

let apply_dictionary (t : t) (vp : Vm.Isa.vprogram) : t =
  let b =
    {
      entry_list = List.rev (Array.to_list t.entries);
      entry_count = Array.length t.entries;
      entry_of_key = Hashtbl.create 512;
    }
  in
  Array.iteri (fun i p -> Hashtbl.replace b.entry_of_key (Pat.key p) i) t.entries;
  let funcs = List.map (itemize_func b) vp.Vm.Isa.funcs in
  let entries = Array.of_list (List.rev b.entry_list) in
  (* greedy longest-match rewrite per function: try combined entries on
     adjacent runs, then cheapest matching single entry *)
  let all_ids = Array.to_list (Array.mapi (fun i p -> (i, p)) entries) in
  let multi = List.filter (fun (_, p) -> List.length p.Pat.parts > 1) all_ids in
  let single = List.filter (fun (_, p) -> List.length p.Pat.parts = 1) all_ids in
  List.iter
    (fun cf ->
      let n = Array.length cf.items in
      let rec next_live i =
        if i >= n then None else if cf.items.(i).live then Some i else next_live (i + 1)
      in
      (* combinations, longest-first *)
      let multi_sorted =
        List.sort
          (fun (_, p1) (_, p2) ->
            compare (List.length p2.Pat.parts) (List.length p1.Pat.parts))
          multi
      in
      let i = ref 0 in
      while !i < n do
        let it = cf.items.(!i) in
        (if it.live then
           (* try to merge a run starting here *)
           let rec run acc len i0 =
             if len = 0 then Some (List.rev acc)
             else
               match next_live i0 with
               | Some j when cf.items.(j).block = it.block ->
                 run (j :: acc) (len - 1) (j + 1)
               | _ -> None
           in
           let applied = ref false in
           List.iter
             (fun (id, p) ->
               if not !applied then begin
                 let nparts = List.length p.Pat.parts in
                 match run [] (nparts - 1) (!i + 1) with
                 | Some js ->
                   let members = !i :: js in
                   let joint =
                     List.concat_map (fun j -> cf.items.(j).insts) members
                   in
                   if Pat.matches p joint then begin
                     let cur =
                       List.fold_left
                         (fun a j -> a + item_pat_bytes entries cf.items.(j))
                         0 members
                     in
                     if Pat.encoded_bytes p < cur then begin
                       it.pat <- id;
                       it.insts <- joint;
                       List.iter (fun j -> cf.items.(j).live <- false) js;
                       applied := true
                     end
                   end
                 | None -> ()
               end)
             multi_sorted);
        incr i
      done;
      (* single-instruction specializations *)
      Array.iter
        (fun it ->
          if it.live && List.length it.insts = 1 then begin
            let cur = item_pat_bytes entries it in
            let best = ref None in
            List.iter
              (fun (id, p) ->
                if Pat.matches p it.insts then begin
                  let bytes = Pat.encoded_bytes p in
                  if
                    bytes < cur
                    && (match !best with Some (_, bb) -> bytes < bb | None -> true)
                  then best := Some (id, bytes)
                end)
              single;
            match !best with Some (id, _) -> it.pat <- id | None -> ()
          end)
        cf.items)
    funcs;
  {
    entries = Array.of_list (List.rev b.entry_list);
    base_count = t.base_count;
    funcs;
    globals = vp.Vm.Isa.globals;
    candidates_tested = 0;
    passes = 0;
  }

(* ---- sizes ---- *)

let item_bytes t it = Pat.encoded_bytes t.entries.(it.pat)

let compressed_code_bytes t =
  List.fold_left
    (fun acc cf ->
      Array.fold_left
        (fun a it -> if it.live then a + item_bytes t it else a)
        acc cf.items)
    0 t.funcs

let dictionary_bytes t =
  let total = ref 0 in
  Array.iteri
    (fun i p -> if i >= t.base_count then total := !total + Pat.dict_entry_bytes p)
    t.entries;
  !total

let stats_to_string t =
  Printf.sprintf
    "dictionary: %d entries (%d base), %d candidates tested, %d passes, code %d B + dict %d B"
    (Array.length t.entries) t.base_count t.candidates_tested t.passes
    (compressed_code_bytes t) (dictionary_bytes t)
