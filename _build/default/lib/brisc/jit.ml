(* Memoizing the native expansion per (entry, operand values) pair: the
   expansion depends on concrete register assignments (e.g. a mov with
   equal source and destination compiles to nothing), so the cache key
   includes the decoded field values, not just the entry id. Hot
   specialized entries hit constantly. *)

let compile_with_stats (img : Emit.image) : Native.Mach.nprogram * int =
  let cache : (int * Vm.Encode.field list, Native.Mach.ninstr list) Hashtbl.t =
    Hashtbl.create 1024
  in
  let produced = ref 0 in
  let funcs =
    Array.to_list
      (Array.mapi
         (fun fidx (f : Emit.ifunc) ->
           let len = String.length f.Emit.code in
           let out = ref [] in
           let labels =
             Array.to_list
               (Array.mapi (fun id off -> (off, id)) f.Emit.label_offsets)
             |> List.sort compare
           in
           let pending = ref labels in
           let emit_labels_at off =
             let rec go () =
               match !pending with
               | (o, id) :: rest when o <= off ->
                 out := Native.Mach.Nlabel (Printf.sprintf "L%d" id) :: !out;
                 pending := rest;
                 go ()
               | _ -> ()
             in
             go ()
           in
           let pos = ref 0 in
           let prev = ref None in
           while !pos < len do
             emit_labels_at !pos;
             let ctx = Emit.context_at img ~fidx ~prev:!prev !pos in
             let d = Emit.decode_at img ~fidx ~ctx !pos in
             let values =
               List.concat_map (fun i -> Vm.Encode.fields i) d.Emit.instrs
             in
             let native =
               match Hashtbl.find_opt cache (d.Emit.entry, values) with
               | Some n -> n
               | None ->
                 let n =
                   List.concat_map Native.Compile.compile_instr d.Emit.instrs
                 in
                 Hashtbl.add cache (d.Emit.entry, values) n;
                 n
             in
             List.iter
               (fun ni ->
                 produced := !produced + Native.Mach.encoded_size ni;
                 out := ni :: !out)
               native;
             prev := Some d.Emit.entry;
             pos := d.Emit.next
           done;
           emit_labels_at len;
           { Native.Mach.name = f.Emit.if_name; code = List.rev !out })
         img.Emit.ifuncs)
  in
  ({ Native.Mach.globals = img.Emit.globals; funcs }, !produced)

let compile img = fst (compile_with_stats img)
