(** BRISC instruction patterns (§4).

    A pattern is one or two VM instruction shapes whose operand fields
    are each either {e burned in} (operand specialization) or {e wild}.
    Wild slots carry a declared bit width chosen when the dictionary
    entry is created, so every entry has a fixed operand-byte layout —
    the quantization that keeps BRISC interpretable in place. The [I4x4]
    width is the paper's [-x4] trick: a 4-bit field holding a value that
    is a multiple of four, scaled on decode.

    A BRISC instruction in the compressed stream is then: one opcode
    byte (assigned per Markov context by {!Markov}) followed by the wild
    field values packed into [ceil(bits/8)] bytes. *)

type slotw =
  | R4          (** register, 4 bits *)
  | I4x4        (** immediate in 0..60, multiple of 4, 4 bits scaled *)
  | I8
  | I16
  | I32
  | LAB8        (** label-table index, 8 bits *)
  | LAB16
  | SYM8        (** symbol-table index, 8 bits *)
  | SYM16

val slot_bits : slotw -> int

type slot =
  | Fixed of Vm.Encode.field
  | Wild of slotw

type part = {
  templ : Vm.Isa.instr;   (** shape carrier; its field values are ignored *)
  slots : slot list;      (** one per field of the shape *)
}

type pat = { parts : part list (** one, or two for opcode combination *) }

val base_pattern : Vm.Isa.instr -> pat
(** The fully wild pattern of an instruction, wild widths sized from the
    instruction's own field values (the width-variant base entries). *)

val epi : pat
(** The paper's special-case [epi] macro: [exit sp,sp,*] fused with
    [rjr] — the only dictionary entry not produced by specialization or
    combination. *)

val matches : pat -> Vm.Isa.instr list -> bool
(** Does the pattern represent exactly these instructions (fixed fields
    equal, wild fields within width)? The list length must equal the
    number of parts. *)

val wild_values : pat -> Vm.Isa.instr list -> Vm.Encode.field list
(** The field values for the wild slots, in order.
    @raise Invalid_argument if [matches] is false. *)

val instantiate : pat -> Vm.Encode.field list -> Vm.Isa.instr list
(** Rebuild the concrete instructions from wild-slot values. *)

val operand_bits : pat -> int
(** Total bits of the wild slots. *)

val encoded_bytes : pat -> int
(** Bytes one occurrence costs in the BRISC stream:
    1 opcode byte + ceil(operand bits / 8). *)

val dict_entry_bytes : pat -> int
(** File cost of shipping this entry in the dictionary header (the
    paper's "2 bytes for [enter sp,*,*]" accounting: a base-instruction
    byte per part plus packed field-descriptor bits). *)

val native_bytes : pat -> int
(** The working-set cost W: decompressor table space, averaged between
    the x86-like and PowerPC-like expansions of the pattern's parts
    (paper §4.3). *)

val specialize : pat -> int -> Vm.Encode.field -> pat option
(** [specialize p i v] burns wild slot [i] (0-based among wild slots)
    to value [v]; [None] if that slot is not specializable (labels are
    never burned — branch targets stay relocatable). *)

val combine : pat -> pat -> pat option
(** Fuse two patterns into an adjacent sequence; [None] when the first
    ends with a control transfer (branch, jump, call, return) or the
    result would exceed four parts. Combination nests across passes, so
    three-instruction fusions like the paper's
    [<enter, spill.i, spill.i>] arise naturally. *)

val wild_count : pat -> int
val to_string : pat -> string
(** Paper style: [<[ld.iw n0,*(sp)],[mov.i n2,n0]>]. *)

val key : pat -> string
(** Canonical hash key (used to deduplicate candidates). *)
