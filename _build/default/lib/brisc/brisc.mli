(** Facade over the BRISC pipeline: compress a VM program, then
    interpret it in place, JIT it, or decompress it.

    Typical flow (see [examples/quickstart.ml]):
    {[
      let vm    = Vm.Codegen.gen_program ir in
      let image = Brisc.compress vm in
      let bytes = Brisc.to_bytes image in           (* ship this *)
      let image = Brisc.of_bytes bytes in           (* client side *)
      let r1    = Brisc.Interp.run image in         (* interpret in place *)
      let nat   = Brisc.Jit.compile image in        (* or JIT *)
      let r2    = Native.Sim.run nat in
    ]} *)

module Pat = Pat
module Dict = Dict
module Markov = Markov
module Emit = Emit
module Decomp = Decomp
module Interp = Interp
module Jit = Jit

val compress : ?k:int -> ?ignore_w:bool -> Vm.Isa.vprogram -> Emit.image
(** Full compression: dictionary construction ([k] best candidates per
    pass, default 20) + Markov coding + packing. *)

val compress_with : Emit.image -> Vm.Isa.vprogram -> Emit.image
(** Compress using an existing image's dictionary (no candidate search) —
    how the paper applies the gcc-trained dictionary to the salt
    example. The Markov tables are rebuilt for the new program. *)

val to_bytes : Emit.image -> string
val of_bytes : string -> Emit.image

type report = {
  original_bytes : int;      (** VM binary code bytes *)
  brisc_total : int;         (** full container *)
  brisc_code : int;          (** instruction streams only *)
  brisc_dict : int;          (** dictionary + tables + headers *)
  dict_entries : int;
  base_entries : int;
  candidates_tested : int;
  passes : int;
  max_markov_successors : int;
}

val measure : ?k:int -> ?ignore_w:bool -> Vm.Isa.vprogram -> Emit.image * report
