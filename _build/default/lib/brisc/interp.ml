exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type result = {
  exit_code : int;
  output : string;
  dispatches : int;
  vm_steps : int;
}

let run ?(mem_size = 1 lsl 22) ?(input = "") ?(fuel = 400_000_000)
    ?(entry = "main") ?(on_dispatch = fun (_ : int) (_ : int) (_ : int) -> ())
    (img : Emit.image) : result =
  let st = Vm.Exec.create ~mem_size ~input () in
  let vm_view = { Vm.Isa.globals = img.Emit.globals; funcs = [] } in
  let gtable, _ = Vm.Layout.globals_table vm_view in
  Vm.Exec.init_globals st gtable img.Emit.globals;
  let nfuncs = Array.length img.Emit.ifuncs in
  if nfuncs > 8191 then fail "too many functions for the ra encoding";
  let fidx_of_name = Hashtbl.create 32 in
  Array.iteri
    (fun i (f : Emit.ifunc) -> Hashtbl.add fidx_of_name f.Emit.if_name i)
    img.Emit.ifuncs;
  let sym_addr name =
    match Hashtbl.find_opt fidx_of_name name with
    | Some i -> Vm.Layout.func_address i
    | None -> (
      match Hashtbl.find_opt gtable name with
      | Some a -> a
      | None -> fail "unresolved symbol %s" name)
  in
  let entry_idx =
    match Hashtbl.find_opt fidx_of_name entry with
    | Some i -> i
    | None -> fail "entry function %s not found" entry
  in
  let encode_ra fidx pc = (1 lsl 30) lor (fidx lsl 16) lor pc in
  let decode_ra v =
    if v < 0 || v land (1 lsl 30) = 0 then None
    else Some ((v lsr 16) land 0x1FFF, v land 0xFFFF)
  in
  let halt_ra = -1 in
  st.Vm.Exec.regs.(Vm.Isa.ra) <- halt_ra;
  let fidx = ref entry_idx in
  let pc = ref 0 in
  let prev = ref None in
  let dispatches = ref 0 in
  let vm_steps = ref 0 in
  let running = ref true in
  (try
     while !running do
       if !vm_steps >= fuel then fail "fuel exhausted after %d steps" !vm_steps;
       let f = img.Emit.ifuncs.(!fidx) in
       if !pc >= String.length f.Emit.code then
         fail "%s: fell off the end" f.Emit.if_name;
       (* decode in place: this is the 'interpretation without
          decompression' path the paper measures at ~12x native *)
       let ctx = Emit.context_at img ~fidx:!fidx ~prev:!prev !pc in
       let d = Emit.decode_at img ~fidx:!fidx ~ctx !pc in
       incr dispatches;
       let next_pc = d.Emit.next in
       on_dispatch !fidx !pc (next_pc - !pc);
       let jumped = ref false in
       let label_off l =
         (* decoded labels are "L<id>" *)
         let id = int_of_string (String.sub l 1 (String.length l - 1)) in
         f.Emit.label_offsets.(id)
       in
       List.iter
         (fun (i : Vm.Isa.instr) ->
           incr vm_steps;
           match i with
           | Vm.Isa.Br (rel, a, b, l) ->
             if Vm.Isa.eval_rel rel st.Vm.Exec.regs.(a) st.Vm.Exec.regs.(b)
             then begin
               pc := label_off l;
               prev := None;
               jumped := true
             end
           | Vm.Isa.Bri (rel, a, v, l) ->
             if Vm.Isa.eval_rel rel st.Vm.Exec.regs.(a) v then begin
               pc := label_off l;
               prev := None;
               jumped := true
             end
           | Vm.Isa.Jmp l ->
             pc := label_off l;
             prev := None;
             jumped := true
           | Vm.Isa.Call name -> (
             match Hashtbl.find_opt fidx_of_name name with
             | Some ti ->
               st.Vm.Exec.regs.(Vm.Isa.ra) <- encode_ra !fidx next_pc;
               fidx := ti;
               pc := 0;
               prev := None;
               jumped := true
             | None ->
               if List.mem name Vm.Isa.builtins then Vm.Exec.builtin st name
               else fail "call to unknown function %s" name)
           | Vm.Isa.Callr r -> (
             match Vm.Layout.func_index_of_address st.Vm.Exec.regs.(r) with
             | Some ti when ti < nfuncs ->
               st.Vm.Exec.regs.(Vm.Isa.ra) <- encode_ra !fidx next_pc;
               fidx := ti;
               pc := 0;
               prev := None;
               jumped := true
             | _ -> fail "indirect call to bad address %d" st.Vm.Exec.regs.(r))
           | Vm.Isa.Rjr -> (
             match decode_ra st.Vm.Exec.regs.(Vm.Isa.ra) with
             | Some (rf, rpc) ->
               fidx := rf;
               pc := rpc;
               prev := None;
               jumped := true
             | None ->
               running := false;
               jumped := true)
           | i ->
             Vm.Exec.step_data st
               ~branch_target:(fun _ -> 0)
               ~sym_addr i)
         d.Emit.instrs;
       if not !jumped then begin
         pc := next_pc;
         prev := Some d.Emit.entry
       end
     done
   with Vm.Exec.Trap m -> fail "%s" m);
  {
    exit_code = st.Vm.Exec.regs.(0);
    output = Buffer.contents st.Vm.Exec.out_buf;
    dispatches = !dispatches;
    vm_steps = !vm_steps;
  }
