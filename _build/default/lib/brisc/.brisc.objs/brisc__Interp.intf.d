lib/brisc/interp.mli: Emit
