lib/brisc/markov.ml: Array Hashtbl List Printf Support
