lib/brisc/brisc.ml: Array Decomp Dict Emit Interp Jit Markov Pat Vm
