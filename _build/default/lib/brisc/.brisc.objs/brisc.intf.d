lib/brisc/brisc.mli: Decomp Dict Emit Interp Jit Markov Pat Vm
