lib/brisc/jit.mli: Emit Native
