lib/brisc/pat.ml: List Native Printf String Vm
