lib/brisc/dict.mli: Pat Vm
