lib/brisc/jit.ml: Array Emit Hashtbl List Native Printf String Vm
