lib/brisc/pat.mli: Vm
