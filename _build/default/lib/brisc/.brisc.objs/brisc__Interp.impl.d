lib/brisc/interp.ml: Array Buffer Emit Hashtbl List Printf String Vm
