lib/brisc/emit.mli: Dict Markov Pat Vm
