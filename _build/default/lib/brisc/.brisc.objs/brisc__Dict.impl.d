lib/brisc/dict.ml: Array Hashtbl List Pat Printf Support Vm
