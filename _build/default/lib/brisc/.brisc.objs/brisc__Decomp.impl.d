lib/brisc/decomp.ml: Array Emit Hashtbl List Printf String Vm
