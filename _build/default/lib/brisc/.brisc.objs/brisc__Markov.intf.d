lib/brisc/markov.mli: Buffer
