lib/brisc/emit.ml: Array Buffer Char Dict Hashtbl List Markov Option Pat Printf String Support Vm
