lib/brisc/decomp.mli: Emit Vm
