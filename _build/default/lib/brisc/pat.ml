type slotw = R4 | I4x4 | I8 | I16 | I32 | LAB8 | LAB16 | SYM8 | SYM16

let slot_bits = function
  | R4 | I4x4 -> 4
  | I8 | LAB8 | SYM8 -> 8
  | I16 | LAB16 | SYM16 -> 16
  | I32 -> 32

type slot = Fixed of Vm.Encode.field | Wild of slotw

type part = { templ : Vm.Isa.instr; slots : slot list }

type pat = { parts : part list }

(* width selection for a concrete field value *)
let width_for_field (f : Vm.Encode.field) =
  match f with
  | Vm.Encode.Freg _ -> R4
  | Vm.Encode.Fimm v ->
    if v >= 0 && v <= 60 && v mod 4 = 0 then I4x4
    else if v >= -128 && v <= 127 then I8
    else if v >= -32768 && v <= 32767 then I16
    else I32
  | Vm.Encode.Flab _ -> LAB8
  (* symbols index a program-wide table that can exceed 256 entries, so
     wild symbol slots are always 16 bits; hot call targets get burned
     into specialized patterns instead *)
  | Vm.Encode.Fsym _ -> SYM16

let fits w (f : Vm.Encode.field) =
  match (w, f) with
  | R4, Vm.Encode.Freg _ -> true
  | I4x4, Vm.Encode.Fimm v -> v >= 0 && v <= 60 && v mod 4 = 0
  | I8, Vm.Encode.Fimm v -> v >= -128 && v <= 127
  | I16, Vm.Encode.Fimm v -> v >= -32768 && v <= 32767
  | I32, Vm.Encode.Fimm _ -> true
  | (LAB8 | LAB16), Vm.Encode.Flab _ -> true
  | (SYM8 | SYM16), Vm.Encode.Fsym _ -> true
  | _ -> false

let base_pattern (i : Vm.Isa.instr) =
  let slots = List.map (fun f -> Wild (width_for_field f)) (Vm.Encode.fields i) in
  { parts = [ { templ = i; slots } ] }

let epi =
  {
    parts =
      [
        {
          templ = Vm.Isa.Exit 0;
          slots = [ Fixed (Vm.Encode.Freg Vm.Isa.sp); Fixed (Vm.Encode.Freg Vm.Isa.sp); Wild I8 ];
        };
        { templ = Vm.Isa.Rjr; slots = [] };
      ];
  }

let field_equal (a : Vm.Encode.field) (b : Vm.Encode.field) = a = b

let part_matches part (i : Vm.Isa.instr) =
  Vm.Encode.base_key part.templ = Vm.Encode.base_key i
  &&
  let fs = Vm.Encode.fields i in
  List.length fs = List.length part.slots
  && List.for_all2
       (fun slot f ->
         match slot with
         | Fixed v -> field_equal v f
         | Wild w -> fits w f)
       part.slots fs

let matches p instrs =
  List.length p.parts = List.length instrs
  && List.for_all2 part_matches p.parts instrs

let wild_values p instrs =
  if not (matches p instrs) then invalid_arg "Pat.wild_values: no match";
  List.concat
    (List.map2
       (fun part i ->
         List.filter_map
           (fun (slot, f) ->
             match slot with Wild _ -> Some f | Fixed _ -> None)
           (List.combine part.slots (Vm.Encode.fields i)))
       p.parts instrs)

let instantiate p values =
  let remaining = ref values in
  let next () =
    match !remaining with
    | [] -> invalid_arg "Pat.instantiate: not enough values"
    | v :: rest ->
      remaining := rest;
      v
  in
  let out =
    List.map
      (fun part ->
        let fs =
          List.map
            (fun slot -> match slot with Fixed v -> v | Wild _ -> next ())
            part.slots
        in
        Vm.Encode.rebuild part.templ fs)
      p.parts
  in
  if !remaining <> [] then invalid_arg "Pat.instantiate: too many values";
  out

let wild_slots p =
  List.concat_map
    (fun part ->
      List.filter_map (fun s -> match s with Wild w -> Some w | Fixed _ -> None) part.slots)
    p.parts

let operand_bits p =
  List.fold_left (fun a w -> a + slot_bits w) 0 (wild_slots p)

let encoded_bytes p = 1 + ((operand_bits p + 7) / 8)

let wild_count p = List.length (wild_slots p)

(* Dictionary file cost: per part, one base-shape byte, plus per field a
   2-bit fixed/wild discriminator and either the packed fixed value
   (4/8/... bits, by its own width) or a 3-bit width spec. Rounded up to
   whole bytes per entry. This reproduces the paper's accounting (the
   [enter sp,*,*] example comes to 2 bytes). *)
let dict_entry_bytes p =
  let bits =
    List.fold_left
      (fun acc part ->
        acc + 8
        + List.fold_left
            (fun a slot ->
              a + 2
              +
              match slot with
              | Wild _ -> 3
              | Fixed f -> slot_bits (width_for_field f))
            0 part.slots)
      0 p.parts
  in
  (bits + 7) / 8

let native_bytes p =
  let instrs = List.map (fun part -> part.templ) p.parts in
  let x86 =
    List.fold_left (fun a i -> a + Native.Compile.expansion_bytes_x86 i) 0 instrs
  in
  let ppc =
    List.fold_left (fun a i -> a + Native.Compile.expansion_bytes_ppc i) 0 instrs
  in
  (x86 + ppc + 1) / 2

let specialize p idx v =
  (* never burn label fields: branch targets must stay relocatable *)
  (match v with Vm.Encode.Flab _ -> raise Exit | _ -> ());
  let count = ref (-1) in
  let parts =
    List.map
      (fun part ->
        let slots =
          List.map
            (fun slot ->
              match slot with
              | Fixed _ -> slot
              | Wild _ ->
                incr count;
                if !count = idx then Fixed v else slot)
            part.slots
        in
        { part with slots })
      p.parts
  in
  if !count < idx then None else Some { parts }

let specialize p idx v = try specialize p idx v with Exit -> None

let ends_block (i : Vm.Isa.instr) =
  match i with
  | Vm.Isa.Br _ | Vm.Isa.Bri _ | Vm.Isa.Jmp _ | Vm.Isa.Rjr | Vm.Isa.Call _
  | Vm.Isa.Callr _ ->
    true
  | _ -> false

(* Combination nests across passes (the paper's example fuses three
   instructions: enter + two spills). Every part but the last must be a
   straight-line instruction; four parts bounds decoder table blowup. *)
let max_parts = 4

let combine a b =
  let last = List.nth a.parts (List.length a.parts - 1) in
  if ends_block last.templ || List.length a.parts + List.length b.parts > max_parts
  then None
  else Some { parts = a.parts @ b.parts }

let slotw_name = function
  | R4 -> "*"
  | I4x4 -> "*x4"
  | I8 -> "*8"
  | I16 -> "*16"
  | I32 -> "*32"
  | LAB8 | LAB16 -> "$*"
  | SYM8 | SYM16 -> "@*"

let field_name = function
  | Vm.Encode.Freg r -> Vm.Isa.reg_name r
  | Vm.Encode.Fimm v -> string_of_int v
  | Vm.Encode.Flab l -> "$" ^ l
  | Vm.Encode.Fsym s -> s

let part_to_string part =
  let ops =
    List.map
      (fun s -> match s with Fixed f -> field_name f | Wild w -> slotw_name w)
      part.slots
  in
  Printf.sprintf "[%s %s]" (Vm.Encode.base_key part.templ) (String.concat "," ops)

let to_string p =
  match p.parts with
  | [ one ] -> part_to_string one
  | parts -> "<" ^ String.concat "," (List.map part_to_string parts) ^ ">"

let key p = to_string p
