(** Our gzip stand-in: LZ77 + dynamic canonical-Huffman entropy coding.

    The format follows DEFLATE's structure — a literal/length alphabet
    (256 literals, end-of-block, 29 length classes with extra bits) and a
    30-class distance alphabet — in a single dynamic-Huffman block with a
    plain 5-bit length table header. It is not bit-compatible with RFC
    1951, but it is the same algorithm family, so compression ratios are
    representative of gzip's. Used both as the paper's "gzip" baseline and
    as the final stage of the wire format (§3 step 5). *)

val compress : string -> string
val decompress : string -> string
(** [decompress (compress s) = s]. @raise Failure on corrupt input. *)

val compressed_size : string -> int
(** [String.length (compress s)] without keeping the output. *)
