lib/zip/huffman.mli: Bytes Support
