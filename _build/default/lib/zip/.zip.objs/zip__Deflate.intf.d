lib/zip/deflate.mli:
