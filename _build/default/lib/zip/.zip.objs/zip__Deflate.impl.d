lib/zip/deflate.ml: Array Buffer Bytes Char Huffman List Lz77 String Support
