lib/zip/range_coder.ml: Array Buffer Char String Support
