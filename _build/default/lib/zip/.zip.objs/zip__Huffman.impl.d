lib/zip/huffman.ml: Array List Support
