lib/zip/mtf.mli:
