lib/zip/mtf.ml: Int List
