lib/zip/range_coder.mli:
