(** Binary-renormalizing range coder with adaptive frequency models.

    The paper's design-space section (§2) contrasts byte codes with
    arithmetic codes, which "compress better by coding for sequences
    longer than individual symbols, but complicate direct interpretation".
    This module provides that end of the design space so the wire-format
    ablation benches can measure the gap. *)

module Model : sig
  type t
  (** Adaptive frequency model over a fixed alphabet, with add-one
      initialization and periodic halving to stay within the coder's
      total-frequency bound. *)

  val create : int -> t
  (** [create n] models symbols in [0, n). *)

  val update : t -> int -> unit
end

type encoder

val encoder : unit -> encoder
val encode : encoder -> Model.t -> int -> unit
(** Encode a symbol under the model's current statistics; the caller is
    responsible for calling [Model.update] afterwards (so encoder and
    decoder stay in lock-step). *)

val finish : encoder -> string

type decoder

val decoder : string -> decoder
val decode : decoder -> Model.t -> int

val compress_order_n : order:int -> string -> string
(** Whole-string convenience: order-[order] context-mixed byte model
    (contexts hash the previous [order] bytes), adaptive. *)

val decompress_order_n : order:int -> string -> string
