type 'a encoded = { indices : int list; novel : 'a list }

let encode ~eq xs =
  (* The table is a list with the most recently used symbol first. *)
  let table = ref [] in
  let novel = ref [] in
  let index_of x =
    let rec go i = function
      | [] -> None
      | y :: rest -> if eq x y then Some i else go (i + 1) rest
    in
    go 1 !table
  in
  let emit x =
    match index_of x with
    | Some i ->
      (* move to front *)
      table := x :: List.filter (fun y -> not (eq x y)) !table;
      i
    | None ->
      novel := x :: !novel;
      table := x :: !table;
      0
  in
  let indices = List.map emit xs in
  { indices; novel = List.rev !novel }

let decode { indices; novel } =
  let table = ref [] in
  let pending = ref novel in
  let emit i =
    if i = 0 then begin
      match !pending with
      | [] -> failwith "Mtf.decode: novel list exhausted"
      | x :: rest ->
        pending := rest;
        table := x :: !table;
        x
    end
    else begin
      let x = List.nth !table (i - 1) in
      table := x :: List.filteri (fun j _ -> j <> i - 1) !table;
      x
    end
  in
  List.map emit indices

let encode_ints xs = encode ~eq:Int.equal xs
let decode_ints e = decode e
