exception Asm_error of string * int

let err line fmt = Printf.ksprintf (fun m -> raise (Asm_error (m, line))) fmt

(* ---- lexical helpers ---- *)

let strip s =
  let s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  String.trim s

let reg_of_name line s =
  match s with
  | "sp" -> Isa.sp
  | "ra" -> Isa.ra
  | _ ->
    if String.length s >= 2 && s.[0] = 'n' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some r when r >= 0 && r < Isa.num_regs -> r
      | _ -> err line "bad register %S" s
    else err line "bad register %S" s

let int_of line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> err line "bad integer %S" s

let label_of line s =
  if String.length s >= 2 && s.[0] = '$' then String.sub s 1 (String.length s - 1)
  else err line "bad label %S (expected $name)" s

(* split "a,b,c" honouring no nesting *)
let operands s =
  if String.trim s = "" then []
  else List.map String.trim (String.split_on_char ',' s)

(* "imm(reg)" *)
let mem_operand line s =
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
    let imm = int_of line (String.sub s 0 i) in
    let r = reg_of_name line (String.sub s (i + 1) (String.length s - i - 2)) in
    (imm, r)
  | _ -> err line "bad memory operand %S" s

(* "(reg)" *)
let ind_operand line s =
  if String.length s >= 3 && s.[0] = '(' && s.[String.length s - 1] = ')' then
    reg_of_name line (String.sub s 1 (String.length s - 2))
  else err line "bad indirect operand %S" s

let width_of_suffix line = function
  | "b" -> Isa.B
  | "h" -> Isa.H
  | "w" -> Isa.W
  | s -> err line "bad width suffix %S" s

let parse_instr_line line text : Isa.instr =
  let text = String.trim text in
  let mnemonic, rest =
    match String.index_opt text ' ' with
    | Some i ->
      (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
    | None -> (text, "")
  in
  let ops = operands rest in
  let reg = reg_of_name line in
  let imm = int_of line in
  let lab = label_of line in
  let aluop_of = function
    | "add" -> Some Isa.Add
    | "sub" -> Some Isa.Sub
    | "mul" -> Some Isa.Mul
    | "div" -> Some Isa.Div
    | "mod" -> Some Isa.Mod
    | "and" -> Some Isa.And
    | "or" -> Some Isa.Or
    | "xor" -> Some Isa.Xor
    | "shl" -> Some Isa.Shl
    | "shr" -> Some Isa.Shr
    | _ -> None
  in
  let relop_of = function
    | "beq" -> Some Isa.Eq
    | "bne" -> Some Isa.Ne
    | "blt" -> Some Isa.Lt
    | "ble" -> Some Isa.Le
    | "bgt" -> Some Isa.Gt
    | "bge" -> Some Isa.Ge
    | _ -> None
  in
  let stem, suffix =
    match String.index_opt mnemonic '.' with
    | Some i ->
      ( String.sub mnemonic 0 i,
        String.sub mnemonic (i + 1) (String.length mnemonic - i - 1) )
    | None -> (mnemonic, "")
  in
  match (stem, suffix, ops) with
  | "ld", s, [ rd; m ] when String.length s = 2 && s.[0] = 'i' ->
    let imm_, rs = mem_operand line m in
    Isa.Ld (width_of_suffix line (String.make 1 s.[1]), reg rd, imm_, rs)
  | "st", s, [ rv; m ] when String.length s = 2 && s.[0] = 'i' ->
    let imm_, rs = mem_operand line m in
    Isa.St (width_of_suffix line (String.make 1 s.[1]), reg rv, imm_, rs)
  | "ldx", s, [ rd; m ] when String.length s = 2 && s.[0] = 'i' ->
    Isa.Ldx (width_of_suffix line (String.make 1 s.[1]), reg rd, ind_operand line m)
  | "stx", s, [ rv; m ] when String.length s = 2 && s.[0] = 'i' ->
    Isa.Stx (width_of_suffix line (String.make 1 s.[1]), reg rv, ind_operand line m)
  | "li", "", [ rd; v ] -> Isa.Li (reg rd, imm v)
  | "la", "", [ rd; s ] -> Isa.La (reg rd, s)
  | "mov", "i", [ rd; rs ] -> Isa.Mov (reg rd, reg rs)
  | "neg", "i", [ rd; rs ] -> Isa.Neg (reg rd, reg rs)
  | "not", "i", [ rd; rs ] -> Isa.Not (reg rd, reg rs)
  | "sext", s, [ rd; rs ] -> Isa.Sext (width_of_suffix line s, reg rd, reg rs)
  | "jmp", "", [ l ] -> Isa.Jmp (lab l)
  | "call", "", [ s ] -> Isa.Call s
  | "callr", "", [ r ] -> Isa.Callr (reg r)
  | "rjr", "", ([] | [ "ra" ]) -> Isa.Rjr
  | "enter", "", [ "sp"; "sp"; k ] -> Isa.Enter (imm k)
  | "exit", "", [ "sp"; "sp"; k ] -> Isa.Exit (imm k)
  | "spill", "i", [ r; m ] ->
    let off, base = mem_operand line m in
    if base <> Isa.sp then err line "spill must address (sp)";
    Isa.Spill (reg r, off)
  | "reload", "i", [ r; m ] ->
    let off, base = mem_operand line m in
    if base <> Isa.sp then err line "reload must address (sp)";
    Isa.Reload (reg r, off)
  | _, "i", [ a; b; c ] when aluop_of stem <> None -> (
    let op = Option.get (aluop_of stem) in
    (* register or immediate third operand *)
    match int_of_string_opt c with
    | Some v -> Isa.Alui (op, reg a, reg b, v)
    | None -> Isa.Alu (op, reg a, reg b, reg c))
  | _, "i", [ a; b; l ] when relop_of stem <> None -> (
    let rel = Option.get (relop_of stem) in
    match int_of_string_opt b with
    | Some v -> Isa.Bri (rel, reg a, v, lab l)
    | None -> Isa.Br (rel, reg a, reg b, lab l))
  | _ -> err line "cannot parse instruction %S" text

let parse_instr text = parse_instr_line 0 text

let parse_program src =
  let lines = String.split_on_char '\n' src in
  let globals = ref [] in
  let funcs = ref [] in
  let current : (string * Isa.instr list ref) option ref = ref None in
  let finish () =
    match !current with
    | Some (name, code) ->
      funcs := { Isa.name; code = List.rev !code } :: !funcs;
      current := None
    | None -> ()
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let text = strip raw in
      if text = "" then ()
      else if String.length text > 8 && String.sub text 0 8 = ".global " then begin
        let rest = String.sub text 8 (String.length text - 8) in
        match String.split_on_char '=' rest with
        | [ head ] -> (
          match String.split_on_char ' ' (String.trim head) with
          | [ name; size ] ->
            globals := (name, int_of lineno size, None) :: !globals
          | _ -> err lineno "bad .global")
        | [ head; init ] -> (
          match String.split_on_char ' ' (String.trim head) with
          | [ name; size ] ->
            let bytes =
              List.map (fun b -> int_of lineno (String.trim b))
                (String.split_on_char ',' init)
            in
            globals := (name, int_of lineno size, Some bytes) :: !globals
          | _ -> err lineno "bad .global")
        | _ -> err lineno "bad .global"
      end
      else if text.[0] = '$' then begin
        (* label definition "$name:" *)
        if text.[String.length text - 1] <> ':' then err lineno "label must end with ':'";
        let l = String.sub text 1 (String.length text - 2) in
        match !current with
        | Some (_, code) -> code := Isa.Label l :: !code
        | None -> err lineno "label outside a function"
      end
      else if text.[String.length text - 1] = ':' then begin
        (* function start *)
        finish ();
        current := Some (String.sub text 0 (String.length text - 1), ref [])
      end
      else begin
        match !current with
        | Some (_, code) -> code := parse_instr_line lineno text :: !code
        | None -> err lineno "instruction outside a function"
      end)
    lines;
  finish ();
  let p = { Isa.globals = List.rev !globals; funcs = List.rev !funcs } in
  match Isa.validate p with
  | [] -> p
  | issues -> err 0 "invalid program:\n%s" (String.concat "\n" issues)
