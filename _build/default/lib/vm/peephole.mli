(** Peephole optimizer over OmniVM code.

    The paper's BRISC inputs were "highly optimized using a commercial
    compiler back end"; our tree-walking code generator is naive, so this
    pass closes part of the gap. All rewrites are local, semantics
    preserving (the test suite re-runs the corpus through every engine
    after optimization), and deliberately conservative around labels and
    calls:

    - store-to-load forwarding: [st.iw r,k(sp); ld.iw r',k(sp)] becomes
      [st.iw r,k(sp); mov.i r',r];
    - redundant load elimination: a reload of the same [sp] slot into the
      same register with no intervening store/call/label is dropped;
    - mov collapsing: [mov.i a,b] where [a = b] is dropped;
    - dead branch threading: a jump to a label that immediately precedes
      the next instruction is dropped;
    - arithmetic identities: [add/sub r,r,0], [mul/div r,r,1],
      [shl/shr r,r,0] become moves (or vanish when source = dest). *)

val optimize_func : Isa.vfunc -> Isa.vfunc
val optimize : Isa.vprogram -> Isa.vprogram

val stats : Isa.vprogram -> int * int
(** (instructions before, instructions after) for reporting. *)
