(* Local rewrites over the instruction list. Applied to a fixed point
   (each rule application can expose another). *)

let is_barrier (i : Isa.instr) =
  (* anything that invalidates knowledge of memory or registers *)
  match i with
  | Isa.Label _ | Isa.Call _ | Isa.Callr _ | Isa.Jmp _ | Isa.Br _ | Isa.Bri _
  | Isa.Rjr | Isa.Enter _ | Isa.Exit _ ->
    true
  | _ -> false

let writes_reg (i : Isa.instr) r =
  match i with
  | Isa.Ld (_, rd, _, _) | Isa.Ldx (_, rd, _) | Isa.Li (rd, _) | Isa.La (rd, _)
  | Isa.Mov (rd, _) | Isa.Alu (_, rd, _, _) | Isa.Alui (_, rd, _, _)
  | Isa.Neg (rd, _) | Isa.Not (rd, _) | Isa.Sext (_, rd, _)
  | Isa.Reload (rd, _) ->
    rd = r
  | _ -> false

(* one rewriting sweep; returns (changed, code') *)
let sweep code =
  let changed = ref false in
  let rec go acc = function
    | [] -> List.rev acc
    (* mov to self *)
    | Isa.Mov (a, b) :: rest when a = b ->
      changed := true;
      go acc rest
    (* arithmetic identities *)
    | Isa.Alui ((Isa.Add | Isa.Sub | Isa.Or | Isa.Xor | Isa.Shl | Isa.Shr), rd, rs, 0)
      :: rest
    | Isa.Alui ((Isa.Mul | Isa.Div), rd, rs, 1) :: rest ->
      changed := true;
      if rd = rs then go acc rest else go acc (Isa.Mov (rd, rs) :: rest)
    | Isa.Alui (Isa.Mul, rd, _, 0) :: rest ->
      changed := true;
      go acc (Isa.Li (rd, 0) :: rest)
    (* store-to-load forwarding on the same sp slot *)
    | (Isa.St (Isa.W, rv, off, base) as st) :: Isa.Ld (Isa.W, rd, off2, base2) :: rest
      when base = base2 && off = off2 ->
      changed := true;
      if rd = rv then go (st :: acc) rest
      else go (st :: acc) (Isa.Mov (rd, rv) :: rest)
    (* jump to the immediately following label *)
    | Isa.Jmp l :: (Isa.Label l2 :: _ as rest) when l = l2 ->
      changed := true;
      go acc rest
    (* dead load: ld into r immediately overwritten by another write to r
       with no use in between (only handle back-to-back writes) *)
    | i1 :: (i2 :: _ as rest)
      when (match i1 with
           | Isa.Ld (_, rd, _, _) | Isa.Li (rd, _) | Isa.Mov (rd, _) ->
             (* i2 overwrites rd without reading it *)
             writes_reg i2 rd && not (reads_reg i2 rd)
           | _ -> false) ->
      changed := true;
      go acc rest
    | i :: rest -> go (i :: acc) rest
  and reads_reg (i : Isa.instr) r =
    match i with
    | Isa.Ld (_, _, _, rs) | Isa.Ldx (_, _, rs) -> rs = r
    | Isa.St (_, rv, _, rb) | Isa.Stx (_, rv, rb) -> rv = r || rb = r
    | Isa.Mov (_, rs) | Isa.Neg (_, rs) | Isa.Not (_, rs) | Isa.Sext (_, _, rs)
      -> rs = r
    | Isa.Alu (_, _, a, b) -> a = r || b = r
    | Isa.Alui (_, _, a, _) -> a = r
    | Isa.Br (_, a, b, _) -> a = r || b = r
    | Isa.Bri (_, a, _, _) -> a = r
    | Isa.Callr a -> a = r
    | Isa.Spill (a, _) -> a = r
    | Isa.Li _ | Isa.La _ | Isa.Jmp _ | Isa.Call _ | Isa.Rjr | Isa.Enter _
    | Isa.Exit _ | Isa.Reload _ | Isa.Label _ ->
      false
  in
  let code' = go [] code in
  (!changed, code')

(* redundant reload elimination needs a small window scan: a load of
   k(sp) into rd is redundant if the previous non-barrier instructions
   contain a load/store of the same slot establishing the same value in
   some register, with neither the register nor memory touched since. *)
let forward_loads code =
  let changed = ref false in
  (* map: (offset) -> register currently known to hold mem[sp+offset] *)
  let known : (int, Isa.reg) Hashtbl.t = Hashtbl.create 16 in
  let invalidate_reg r =
    Hashtbl.iter
      (fun off r' -> if r = r' then Hashtbl.remove known off)
      (Hashtbl.copy known)
  in
  let out =
    List.map
      (fun (i : Isa.instr) ->
        if is_barrier i then begin
          Hashtbl.reset known;
          i
        end
        else begin
          let i' =
            match i with
            | Isa.Ld (Isa.W, rd, off, base)
              when base = Isa.sp && off mod 4 = 0 -> (
              match Hashtbl.find_opt known off with
              | Some r when r <> rd ->
                changed := true;
                Isa.Mov (rd, r)
              | Some r when r = rd ->
                changed := true;
                (* value already there: keep a self-move, removed by sweep *)
                Isa.Mov (rd, rd)
              | _ -> i)
            | _ -> i
          in
          (* update knowledge *)
          (match i' with
          | Isa.St (Isa.W, rv, off, base)
            when base = Isa.sp && off mod 4 = 0 ->
            (* 4-aligned word slots cannot partially alias each other;
               hand-written unaligned stores fall to the reset case *)
            invalidate_reg rv;
            Hashtbl.replace known off rv
          | Isa.St _ | Isa.Stx _ | Isa.Spill _ ->
            (* unknown memory write: drop everything *)
            Hashtbl.reset known
          | Isa.Ld (Isa.W, rd, off, base)
            when base = Isa.sp && off mod 4 = 0 ->
            invalidate_reg rd;
            Hashtbl.replace known off rd
          | Isa.Mov (rd, _) | Isa.Li (rd, _) | Isa.La (rd, _)
          | Isa.Alu (_, rd, _, _) | Isa.Alui (_, rd, _, _) | Isa.Neg (rd, _)
          | Isa.Not (rd, _) | Isa.Sext (_, rd, _) | Isa.Ld (_, rd, _, _)
          | Isa.Ldx (_, rd, _) | Isa.Reload (rd, _) ->
            invalidate_reg rd
          | _ -> ());
          i'
        end)
      code
  in
  (!changed, out)

let optimize_func (f : Isa.vfunc) =
  let rec fixpoint code n =
    if n = 0 then code
    else begin
      let c1, code = forward_loads code in
      let c2, code = sweep code in
      if c1 || c2 then fixpoint code (n - 1) else code
    end
  in
  { f with Isa.code = fixpoint f.Isa.code 8 }

let optimize (p : Isa.vprogram) =
  { p with Isa.funcs = List.map optimize_func p.Isa.funcs }

let stats p =
  let count q = Isa.instr_count q in
  (count p, count (optimize p))
