lib/vm/isa.mli:
