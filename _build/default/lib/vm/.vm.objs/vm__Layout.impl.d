lib/vm/layout.ml: Hashtbl Isa List
