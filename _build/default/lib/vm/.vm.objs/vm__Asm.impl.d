lib/vm/asm.ml: Isa List Option Printf String
