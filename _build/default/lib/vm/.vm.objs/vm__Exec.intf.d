lib/vm/exec.mli: Buffer Bytes Hashtbl Isa
