lib/vm/exec.ml: Array Buffer Bytes Char Hashtbl Isa List Printf String
