lib/vm/codegen.mli: Ir Isa
