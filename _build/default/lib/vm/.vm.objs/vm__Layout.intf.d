lib/vm/layout.mli: Hashtbl Isa
