lib/vm/interp.mli: Isa
