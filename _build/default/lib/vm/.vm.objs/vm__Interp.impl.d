lib/vm/interp.ml: Array Buffer Bytes Char Hashtbl Isa Layout List Printf String
