lib/vm/isa.ml: Hashtbl List Printf String
