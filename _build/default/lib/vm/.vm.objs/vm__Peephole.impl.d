lib/vm/peephole.ml: Hashtbl Isa List
