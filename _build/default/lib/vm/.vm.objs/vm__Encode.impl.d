lib/vm/encode.ml: Array Buffer Char Hashtbl Isa List String Support
