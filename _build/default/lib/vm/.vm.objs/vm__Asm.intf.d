lib/vm/asm.mli: Isa
