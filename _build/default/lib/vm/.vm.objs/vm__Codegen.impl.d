lib/vm/codegen.ml: Ir Isa List Printf String
