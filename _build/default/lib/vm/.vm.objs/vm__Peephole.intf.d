lib/vm/peephole.mli: Isa
