let data_base = 0x1000

let func_address idx = 8 * (idx + 1)

let func_index_of_address a =
  if a >= 8 && a < data_base && a mod 8 = 0 then Some ((a / 8) - 1) else None

let globals_table (p : Isa.vprogram) =
  let tbl = Hashtbl.create 64 in
  let next = ref data_base in
  List.iter
    (fun (name, size, _) ->
      let aligned = (!next + 3) / 4 * 4 in
      Hashtbl.add tbl name aligned;
      next := aligned + max 1 size)
    p.Isa.globals;
  (tbl, !next)
