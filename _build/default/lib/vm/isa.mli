(** The OmniVM-like register virtual machine instruction set (§4).

    Sixteen integer registers (with [sp] and [ra] aliased to the top
    two, so every register field fits four bits), a
    RISC core (loads/stores with register-displacement addressing,
    three-address ALU ops, compare-and-branch), immediate forms, and the
    frame macro-instructions the paper shows ([enter], [exit], [spill.i],
    [reload.i], [rjr]).

    Calling convention implemented by {!Codegen} and {!Interp}:
    - up to 6 arguments in [n0]–[n5]; result in [n0];
    - [call] writes the return address to [ra]; [rjr] returns through it;
    - [n0]–[n3] are caller-saved scratch, [n4]–[n13] are callee-saved
      (spilled/reloaded by the prologue/epilogue);
    - the stack grows down; [enter k] subtracts [k] from [sp]; locals
      live at [0..frame_size) from [sp], formal spill slots just above.

    {!feature_set} captures the §5 "reducing RISC abstract machines"
    de-tunings: dropping ALU-immediate forms (all immediates except
    [li]), and dropping register-displacement addressing (leaving only
    load/store-indirect). *)

type reg = int
(** The paper's OmniVM has 16 integer registers, all addressable in a
    4-bit field: [n0]–[n13] are general, {!sp} aliases n14 and {!ra}
    aliases n15. *)

val sp : reg
val ra : reg
val num_regs : int
(** Total addressable registers (16). *)

val reg_name : reg -> string

type width = B | H | W
(** Byte, half-word (16-bit), word (32-bit) memory access widths. *)

val width_bytes : width -> int
val width_name : width -> string
(** "b", "h", or "w" — the paper writes [ld.iw] for word loads. *)

type aluop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

val aluop_name : aluop -> string

type relop = Eq | Ne | Lt | Le | Gt | Ge

val relop_name : relop -> string
val eval_rel : relop -> int -> int -> bool

type instr =
  | Ld of width * reg * int * reg      (** [ld.iw rd, imm(rs)] *)
  | St of width * reg * int * reg      (** [st.iw rs2, imm(rs1)] *)
  | Ldx of width * reg * reg           (** load-indirect (no displacement) *)
  | Stx of width * reg * reg           (** store-indirect *)
  | Li of reg * int                    (** load immediate *)
  | La of reg * string                 (** load address of a symbol *)
  | Mov of reg * reg                   (** [mov.i rd, rs] *)
  | Alu of aluop * reg * reg * reg     (** [add.i rd, rs1, rs2] *)
  | Alui of aluop * reg * reg * int    (** [add.i rd, rs1, imm] *)
  | Neg of reg * reg
  | Not of reg * reg                   (** bitwise complement *)
  | Sext of width * reg * reg          (** sign-extend sub-word value *)
  | Br of relop * reg * reg * string   (** [ble.i rs1, rs2, label] *)
  | Bri of relop * reg * int * string  (** [ble.i rs, imm, label] *)
  | Jmp of string
  | Call of string                     (** direct call by symbol *)
  | Callr of reg                       (** indirect call *)
  | Rjr                                (** return through [ra] *)
  | Enter of int                       (** [enter sp,sp,k] *)
  | Exit of int                        (** [exit sp,sp,k] *)
  | Spill of reg * int                 (** [spill.i r, k(sp)] *)
  | Reload of reg * int                (** [reload.i r, k(sp)] *)
  | Label of string

type vfunc = { name : string; code : instr list }

type vprogram = {
  globals : (string * int * int list option) list;
      (** name, size, optional byte init *)
  funcs : vfunc list;
}

type feature_set = {
  has_imm_alu : bool;   (** ALU-immediate + branch-immediate forms *)
  has_reg_disp : bool;  (** imm(rs) addressing on loads/stores *)
}

val full_risc : feature_set
val minus_immediates : feature_set
val minus_reg_disp : feature_set
val minimal : feature_set

val feature_set_name : feature_set -> string

val instr_to_string : instr -> string
val func_to_string : vfunc -> string
val program_to_string : vprogram -> string

val instr_count : vprogram -> int
val defined_labels : vfunc -> string list
val validate : vprogram -> string list
(** Empty list when well-formed: branch targets defined in the same
    function, register indices in range, call targets defined (or
    builtins), no duplicate function names. *)

val builtins : string list
(** Runtime-provided functions programs may call: [putchar], [getchar],
    [print_int], [abort]. *)
