(** Assembler for the textual OmniVM format that {!Isa.program_to_string}
    prints, so VM programs can be written by hand, dumped by [mcc --emit
    vm], edited, and reassembled.

    Syntax (one item per line; [#] comments):
    {v
      .global NAME SIZE [= b0,b1,...]
      NAME:                     function start
      $label:                   label
        ld.iw n0,4(sp)          instruction (exactly the printed forms)
        ble.i n4,0,$L56
        call pepper
    v} *)

exception Asm_error of string * int
(** Message and 1-based line number. *)

val parse_program : string -> Isa.vprogram
(** @raise Asm_error on malformed input. The result passes
    [Isa.validate]; validation issues are raised as [Asm_error] on
    line 0. *)

val parse_instr : string -> Isa.instr
(** Parse a single instruction line (no label/function forms). *)
