(** Shared execution core: machine state and the semantics of the
    data-path instructions, used by both the VM interpreter and the
    BRISC direct interpreter so the two cannot drift apart. Control
    transfer (branches, calls, returns) stays with each engine because
    their program counters differ (instruction index vs byte offset). *)

type state = {
  mem : Bytes.t;
  regs : int array;           (** length {!Isa.num_regs} *)
  out_buf : Buffer.t;
  input : string;
  mutable in_pos : int;
}

exception Trap of string

val create : ?mem_size:int -> ?input:string -> unit -> state
(** Fresh state with [sp] at the top of memory. *)

val norm : int -> int
(** 32-bit two's-complement normalization. *)

val load : state -> Isa.width -> int -> int
(** Sign-extending load. @raise Trap on out-of-range addresses. *)

val store : state -> Isa.width -> int -> int -> unit
val alu : Isa.aluop -> int -> int -> int
(** @raise Trap on division or modulo by zero. *)

val init_globals : state -> (string, int) Hashtbl.t -> (string * int * int list option) list -> unit
(** Copy global initializers into memory at their laid-out addresses. *)

val builtin : state -> string -> unit
(** Execute a runtime builtin ([putchar] etc.) against [regs.(0)].
    @raise Trap on [abort] or unknown names. *)

val step_data : state -> branch_target:(string -> int) -> sym_addr:(string -> int) -> Isa.instr -> unit
(** Execute one non-control instruction ([Ld]/[St]/[Li]/[La]/[Mov]/ALU/
    [Sext]/[Enter]/[Exit]/[Spill]/[Reload]; [Label] is a no-op).
    @raise Invalid_argument for control instructions — callers dispatch
    those themselves. *)
