(** Code generation from the lcc-style tree IR to OmniVM code.

    A tree-walking generator with an on-the-fly register stack over the
    callee-saved registers [n4]–[n15] (values that spill when the stack
    outgrows the register file go to scratch frame slots), producing the
    prologue/epilogue shape the paper's example shows: [enter], [spill.i]
    of the callee-saved registers and [ra], body, [exit], [rjr].

    The [features] argument selects the §5 ISA de-tunings: without
    ALU-immediate forms every constant is materialized through [li];
    without register-displacement addressing every memory access computes
    its address explicitly and uses load/store-indirect. *)

exception Codegen_error of string

val gen_func :
  ?features:Isa.feature_set -> Ir.Tree.program -> Ir.Tree.func -> Isa.vfunc

val gen_program : ?features:Isa.feature_set -> Ir.Tree.program -> Isa.vprogram
(** Translate every function; globals pass through. The result passes
    [Isa.validate]. @raise Codegen_error on unsupported inputs (more than
    6 arguments, V-typed value positions). *)
