(** Memory layout shared by the VM interpreter, the BRISC interpreter and
    the native simulator, so function pointers and global addresses agree
    across all three execution engines. *)

val data_base : int
(** First data address; globals are laid out upward from here,
    4-byte aligned. *)

val func_address : int -> int
(** Synthetic code address of the [i]-th function (multiples of 8
    starting at 8, disjoint from data addresses). *)

val func_index_of_address : int -> int option
(** Inverse of {!func_address}; [None] for non-function addresses. *)

val globals_table : Isa.vprogram -> (string, int) Hashtbl.t * int
(** Address of every global, and the end of the data segment. *)
