type reg = int

let sp = 14
let ra = 15
let num_regs = 16

let reg_name r =
  if r = sp then "sp"
  else if r = ra then "ra"
  else if r >= 0 && r < 16 then Printf.sprintf "n%d" r
  else Printf.sprintf "r?%d" r

type width = B | H | W

let width_bytes = function B -> 1 | H -> 2 | W -> 4
let width_name = function B -> "b" | H -> "h" | W -> "w"

type aluop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

let aluop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

type relop = Eq | Ne | Lt | Le | Gt | Ge

let relop_name = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lt -> "blt"
  | Le -> "ble"
  | Gt -> "bgt"
  | Ge -> "bge"

let eval_rel rel a b =
  match rel with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

type instr =
  | Ld of width * reg * int * reg
  | St of width * reg * int * reg
  | Ldx of width * reg * reg
  | Stx of width * reg * reg
  | Li of reg * int
  | La of reg * string
  | Mov of reg * reg
  | Alu of aluop * reg * reg * reg
  | Alui of aluop * reg * reg * int
  | Neg of reg * reg
  | Not of reg * reg
  | Sext of width * reg * reg
  | Br of relop * reg * reg * string
  | Bri of relop * reg * int * string
  | Jmp of string
  | Call of string
  | Callr of reg
  | Rjr
  | Enter of int
  | Exit of int
  | Spill of reg * int
  | Reload of reg * int
  | Label of string

type vfunc = { name : string; code : instr list }

type vprogram = {
  globals : (string * int * int list option) list;
  funcs : vfunc list;
}

type feature_set = { has_imm_alu : bool; has_reg_disp : bool }

let full_risc = { has_imm_alu = true; has_reg_disp = true }
let minus_immediates = { has_imm_alu = false; has_reg_disp = true }
let minus_reg_disp = { has_imm_alu = true; has_reg_disp = false }
let minimal = { has_imm_alu = false; has_reg_disp = false }

let feature_set_name fs =
  match (fs.has_imm_alu, fs.has_reg_disp) with
  | true, true -> "RISC"
  | false, true -> "minus immediates"
  | true, false -> "minus register-displacement"
  | false, false -> "minus both"

let instr_to_string i =
  let r = reg_name in
  match i with
  | Ld (w, rd, imm, rs) ->
    Printf.sprintf "ld.i%s %s,%d(%s)" (width_name w) (r rd) imm (r rs)
  | St (w, rs2, imm, rs1) ->
    Printf.sprintf "st.i%s %s,%d(%s)" (width_name w) (r rs2) imm (r rs1)
  | Ldx (w, rd, rs) -> Printf.sprintf "ldx.i%s %s,(%s)" (width_name w) (r rd) (r rs)
  | Stx (w, rs2, rs1) ->
    Printf.sprintf "stx.i%s %s,(%s)" (width_name w) (r rs2) (r rs1)
  | Li (rd, imm) -> Printf.sprintf "li %s,%d" (r rd) imm
  | La (rd, s) -> Printf.sprintf "la %s,%s" (r rd) s
  | Mov (rd, rs) -> Printf.sprintf "mov.i %s,%s" (r rd) (r rs)
  | Alu (op, rd, rs1, rs2) ->
    Printf.sprintf "%s.i %s,%s,%s" (aluop_name op) (r rd) (r rs1) (r rs2)
  | Alui (op, rd, rs1, imm) ->
    Printf.sprintf "%s.i %s,%s,%d" (aluop_name op) (r rd) (r rs1) imm
  | Neg (rd, rs) -> Printf.sprintf "neg.i %s,%s" (r rd) (r rs)
  | Not (rd, rs) -> Printf.sprintf "not.i %s,%s" (r rd) (r rs)
  | Sext (w, rd, rs) ->
    Printf.sprintf "sext.%s %s,%s" (width_name w) (r rd) (r rs)
  | Br (rel, rs1, rs2, lbl) ->
    Printf.sprintf "%s.i %s,%s,$%s" (relop_name rel) (r rs1) (r rs2) lbl
  | Bri (rel, rs1, imm, lbl) ->
    Printf.sprintf "%s.i %s,%d,$%s" (relop_name rel) (r rs1) imm lbl
  | Jmp lbl -> Printf.sprintf "jmp $%s" lbl
  | Call s -> Printf.sprintf "call %s" s
  | Callr rg -> Printf.sprintf "callr %s" (r rg)
  | Rjr -> "rjr ra"
  | Enter k -> Printf.sprintf "enter sp,sp,%d" k
  | Exit k -> Printf.sprintf "exit sp,sp,%d" k
  | Spill (rg, off) -> Printf.sprintf "spill.i %s,%d(sp)" (r rg) off
  | Reload (rg, off) -> Printf.sprintf "reload.i %s,%d(sp)" (r rg) off
  | Label lbl -> Printf.sprintf "$%s:" lbl

let func_to_string f =
  let body =
    List.map
      (fun i ->
        match i with
        | Label _ -> instr_to_string i
        | _ -> "  " ^ instr_to_string i)
      f.code
  in
  Printf.sprintf "%s:\n%s" f.name (String.concat "\n" body)

let program_to_string p =
  let globals =
    List.map
      (fun (n, sz, init) ->
        match init with
        | None -> Printf.sprintf ".global %s %d" n sz
        | Some bytes ->
          Printf.sprintf ".global %s %d = %s" n sz
            (String.concat "," (List.map string_of_int bytes)))
      p.globals
  in
  String.concat "\n" (globals @ List.map func_to_string p.funcs) ^ "\n"

let instr_count p =
  List.fold_left
    (fun acc f ->
      acc
      + List.length (List.filter (fun i -> match i with Label _ -> false | _ -> true) f.code))
    0 p.funcs

let defined_labels f =
  List.filter_map (fun i -> match i with Label l -> Some l | _ -> None) f.code

let builtins = [ "putchar"; "getchar"; "print_int"; "abort" ]

let validate p =
  let issues = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  let fnames = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem fnames f.name then problem "duplicate function %s" f.name
      else Hashtbl.add fnames f.name ())
    p.funcs;
  let known_target s =
    Hashtbl.mem fnames s || List.mem s builtins
    || List.exists (fun (g, _, _) -> g = s) p.globals
  in
  let check_reg f r =
    if r < 0 || r >= num_regs then problem "%s: bad register %d" f.name r
  in
  List.iter
    (fun f ->
      let labels = Hashtbl.create 16 in
      List.iter
        (fun i ->
          match i with
          | Label l ->
            if Hashtbl.mem labels l then problem "%s: duplicate label %s" f.name l
            else Hashtbl.add labels l ()
          | _ -> ())
        f.code;
      let target l =
        if not (Hashtbl.mem labels l) then
          problem "%s: branch to undefined label %s" f.name l
      in
      List.iter
        (fun i ->
          match i with
          | Ld (_, a, _, b) | St (_, a, _, b) | Ldx (_, a, b) | Stx (_, a, b)
          | Mov (a, b) | Neg (a, b) | Not (a, b) | Sext (_, a, b) ->
            check_reg f a;
            check_reg f b
          | Li (a, _) | Callr a | Spill (a, _) | Reload (a, _) -> check_reg f a
          | La (a, s) ->
            check_reg f a;
            if not (known_target s) then problem "%s: la of unknown %s" f.name s
          | Alu (_, a, b, c) ->
            check_reg f a;
            check_reg f b;
            check_reg f c
          | Alui (_, a, b, _) ->
            check_reg f a;
            check_reg f b
          | Br (_, a, b, l) ->
            check_reg f a;
            check_reg f b;
            target l
          | Bri (_, a, _, l) ->
            check_reg f a;
            target l
          | Jmp l -> target l
          | Call s -> if not (known_target s) then problem "%s: call to unknown %s" f.name s
          | Rjr | Enter _ | Exit _ | Label _ -> ())
        f.code)
    p.funcs;
  List.rev !issues
