exception Codegen_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Codegen_error m)) fmt

let max_reg_args = 6

(* evaluation registers: n4..n13, callee-saved (n14=sp, n15=ra) *)
let eval_regs = List.init 10 (fun i -> i + 4)

type slot = Vreg of Isa.reg | Vspill of int  (* scratch slot index *)

type ctx = {
  features : Isa.feature_set;
  frame_size : int;            (* IR locals *)
  nformals : int;
  mutable out : Isa.instr list;   (* reversed *)
  mutable stack : slot list;      (* value stack, top first *)
  mutable free : Isa.reg list;    (* free eval registers *)
  mutable used : Isa.reg list;    (* eval regs ever allocated *)
  mutable nscratch : int;         (* scratch spill slots allocated *)
  mutable makes_call : bool;
  mutable next_lbl : int;
}

let emit ctx i = ctx.out <- i :: ctx.out

let formal_area ctx = ctx.frame_size
let scratch_area ctx = ctx.frame_size + (4 * ctx.nformals)
let scratch_off ctx k = scratch_area ctx + (4 * k)

let fresh_scratch ctx =
  let k = ctx.nscratch in
  ctx.nscratch <- k + 1;
  k

(* Allocate an eval register; if none are free, spill the *deepest*
   register-resident stack slot to a scratch frame slot. *)
let rec alloc_reg ctx =
  match ctx.free with
  | r :: rest ->
    ctx.free <- rest;
    if not (List.mem r ctx.used) then ctx.used <- r :: ctx.used;
    r
  | [] ->
    (* find deepest Vreg in stack *)
    let rec spill_deepest rev_acc = function
      | [] -> fail "expression too complex: no spillable value"
      | Vreg r :: rest ->
        let k = fresh_scratch ctx in
        emit ctx (Isa.St (Isa.W, r, scratch_off ctx k, Isa.sp));
        ctx.free <- [ r ];
        List.rev_append rev_acc (Vspill k :: rest)
      | (Vspill _ as s) :: rest -> spill_deepest (s :: rev_acc) rest
    in
    (* stack is top-first; deepest is at the end *)
    ctx.stack <- List.rev (spill_deepest [] (List.rev ctx.stack));
    alloc_reg ctx

let free_reg ctx r = ctx.free <- r :: ctx.free

let push ctx slot = ctx.stack <- slot :: ctx.stack

let pop ctx =
  match ctx.stack with
  | [] -> fail "internal: value stack underflow"
  | s :: rest ->
    ctx.stack <- rest;
    s

(* Pop a slot into a register (reloading if spilled). *)
let pop_reg ctx =
  match pop ctx with
  | Vreg r -> r
  | Vspill k ->
    let r = alloc_reg ctx in
    emit ctx (Isa.Ld (Isa.W, r, scratch_off ctx k, Isa.sp));
    r

let width_of_ty = function
  | Ir.Op.C -> Isa.B
  | Ir.Op.S -> Isa.H
  | Ir.Op.I | Ir.Op.P -> Isa.W
  | Ir.Op.V -> fail "void type in value position"

let aluop_of_binop = function
  | Ir.Op.Add -> Isa.Add
  | Ir.Op.Sub -> Isa.Sub
  | Ir.Op.Mul -> Isa.Mul
  | Ir.Op.Div -> Isa.Div
  | Ir.Op.Mod -> Isa.Mod
  | Ir.Op.Band -> Isa.And
  | Ir.Op.Bor -> Isa.Or
  | Ir.Op.Bxor -> Isa.Xor
  | Ir.Op.Lsh -> Isa.Shl
  | Ir.Op.Rsh -> Isa.Shr

let relop_of_ir = function
  | Ir.Op.Eq -> Isa.Eq
  | Ir.Op.Ne -> Isa.Ne
  | Ir.Op.Lt -> Isa.Lt
  | Ir.Op.Le -> Isa.Le
  | Ir.Op.Gt -> Isa.Gt
  | Ir.Op.Ge -> Isa.Ge

(* load the address denoted by an sp-relative offset into a register *)
let addr_into_reg ctx off =
  let r = alloc_reg ctx in
  if ctx.features.Isa.has_imm_alu then emit ctx (Isa.Alui (Isa.Add, r, Isa.sp, off))
  else begin
    emit ctx (Isa.Li (r, off));
    emit ctx (Isa.Alu (Isa.Add, r, Isa.sp, r))
  end;
  r

(* memory access through an sp displacement, honouring the feature set *)
let load_sp ctx w rd off =
  if ctx.features.Isa.has_reg_disp then emit ctx (Isa.Ld (w, rd, off, Isa.sp))
  else begin
    let ar = addr_into_reg ctx off in
    emit ctx (Isa.Ldx (w, rd, ar));
    free_reg ctx ar
  end

let store_sp ctx w rs off =
  if ctx.features.Isa.has_reg_disp then emit ctx (Isa.St (w, rs, off, Isa.sp))
  else begin
    let ar = addr_into_reg ctx off in
    emit ctx (Isa.Stx (w, rs, ar));
    free_reg ctx ar
  end

(* ---- tree evaluation ---- *)

let rec eval ctx (t : Ir.Tree.tree) : unit =
  (* evaluates t, pushing its value onto the stack *)
  match t with
  | Ir.Tree.Cnst (_, _, v) ->
    let r = alloc_reg ctx in
    emit ctx (Isa.Li (r, v));
    push ctx (Vreg r)
  | Ir.Tree.Addrl (_, off) ->
    let r = addr_into_reg ctx off in
    push ctx (Vreg r)
  | Ir.Tree.Addrf (_, off) ->
    let r = addr_into_reg ctx (formal_area ctx + off) in
    push ctx (Vreg r)
  | Ir.Tree.Addrg name ->
    let r = alloc_reg ctx in
    emit ctx (Isa.La (r, name));
    push ctx (Vreg r)
  | Ir.Tree.Indir (ty, addr) -> (
    let w = width_of_ty ty in
    match addr with
    | Ir.Tree.Addrl (_, off) ->
      let r = alloc_reg ctx in
      load_sp ctx w r off;
      push ctx (Vreg r)
    | Ir.Tree.Addrf (_, off) ->
      let r = alloc_reg ctx in
      load_sp ctx w r (formal_area ctx + off);
      push ctx (Vreg r)
    | Ir.Tree.Binop (Ir.Op.P, Ir.Op.Add, base, Ir.Tree.Cnst (_, _, d))
      when ctx.features.Isa.has_reg_disp ->
      eval ctx base;
      let b = pop_reg ctx in
      let r = alloc_reg ctx in
      emit ctx (Isa.Ld (w, r, d, b));
      free_reg ctx b;
      push ctx (Vreg r)
    | _ ->
      eval ctx addr;
      let a = pop_reg ctx in
      let r = alloc_reg ctx in
      if ctx.features.Isa.has_reg_disp then emit ctx (Isa.Ld (w, r, 0, a))
      else emit ctx (Isa.Ldx (w, r, a));
      free_reg ctx a;
      push ctx (Vreg r))
  | Ir.Tree.Binop (_, op, a, b) -> (
    let commutative =
      match op with
      | Ir.Op.Add | Ir.Op.Mul | Ir.Op.Band | Ir.Op.Bor | Ir.Op.Bxor -> true
      | _ -> false
    in
    match (a, b) with
    | _, Ir.Tree.Cnst (_, _, v) when ctx.features.Isa.has_imm_alu ->
      eval ctx a;
      let ra_ = pop_reg ctx in
      let rd = alloc_reg ctx in
      emit ctx (Isa.Alui (aluop_of_binop op, rd, ra_, v));
      free_reg ctx ra_;
      push ctx (Vreg rd)
    | Ir.Tree.Cnst (_, _, v), _ when ctx.features.Isa.has_imm_alu && commutative ->
      eval ctx b;
      let rb = pop_reg ctx in
      let rd = alloc_reg ctx in
      emit ctx (Isa.Alui (aluop_of_binop op, rd, rb, v));
      free_reg ctx rb;
      push ctx (Vreg rd)
    | _ ->
      eval ctx a;
      eval ctx b;
      let rb = pop_reg ctx in
      let ra_ = pop_reg ctx in
      let rd = alloc_reg ctx in
      emit ctx (Isa.Alu (aluop_of_binop op, rd, ra_, rb));
      free_reg ctx ra_;
      free_reg ctx rb;
      push ctx (Vreg rd))
  | Ir.Tree.Neg (_, a) ->
    eval ctx a;
    let r = pop_reg ctx in
    let rd = alloc_reg ctx in
    emit ctx (Isa.Neg (rd, r));
    free_reg ctx r;
    push ctx (Vreg rd)
  | Ir.Tree.Bcom (_, a) ->
    eval ctx a;
    let r = pop_reg ctx in
    let rd = alloc_reg ctx in
    emit ctx (Isa.Not (rd, r));
    free_reg ctx r;
    push ctx (Vreg rd)
  | Ir.Tree.Cvt (from_, to_, a) -> (
    eval ctx a;
    (* loads sign-extend, so most conversions are register no-ops; the
       narrowing conversions re-extend from the lower width *)
    match (from_, to_) with
    | Ir.Op.I, Ir.Op.C | Ir.Op.S, Ir.Op.C ->
      let r = pop_reg ctx in
      let rd = alloc_reg ctx in
      emit ctx (Isa.Sext (Isa.B, rd, r));
      free_reg ctx r;
      push ctx (Vreg rd)
    | Ir.Op.I, Ir.Op.S ->
      let r = pop_reg ctx in
      let rd = alloc_reg ctx in
      emit ctx (Isa.Sext (Isa.H, rd, r));
      free_reg ctx r;
      push ctx (Vreg rd)
    | _ -> ())
  | Ir.Tree.Call (ty, callee) ->
    gen_call ctx ty callee;
    (* result in n0; copy to an eval register *)
    let rd = alloc_reg ctx in
    emit ctx (Isa.Mov (rd, 0));
    push ctx (Vreg rd)

(* Perform a call: all current stack slots are the pending arguments
   (deepest = first). Moves them to n0.., emits the call. *)
and gen_call ctx _ty callee =
  ctx.makes_call <- true;
  (* for indirect calls evaluate the callee address first *)
  let callee_reg =
    match callee with
    | Ir.Tree.Addrg _ -> None
    | _ ->
      eval ctx callee;
      Some (pop_reg ctx)
  in
  let args = List.rev ctx.stack in
  ctx.stack <- [];
  let nargs = List.length args in
  if nargs > max_reg_args then
    fail "calls with more than %d arguments are not supported" max_reg_args;
  List.iteri
    (fun i slot ->
      match slot with
      | Vreg r ->
        emit ctx (Isa.Mov (i, r));
        free_reg ctx r
      | Vspill k -> load_sp ctx Isa.W i (scratch_off ctx k))
    args;
  (match callee with
  | Ir.Tree.Addrg f -> emit ctx (Isa.Call f)
  | _ -> (
    match callee_reg with
    | Some r ->
      emit ctx (Isa.Callr r);
      free_reg ctx r
    | None -> assert false))

(* store top-of-concept value [v] through address tree [addr] *)
let gen_store ctx ty addr value_reg =
  let w = width_of_ty ty in
  match addr with
  | Ir.Tree.Addrl (_, off) -> store_sp ctx w value_reg off
  | Ir.Tree.Addrf (_, off) -> store_sp ctx w value_reg (formal_area ctx + off)
  | Ir.Tree.Binop (Ir.Op.P, Ir.Op.Add, base, Ir.Tree.Cnst (_, _, d))
    when ctx.features.Isa.has_reg_disp ->
    eval ctx base;
    let b = pop_reg ctx in
    emit ctx (Isa.St (w, value_reg, d, b));
    free_reg ctx b
  | _ ->
    eval ctx addr;
    let a = pop_reg ctx in
    if ctx.features.Isa.has_reg_disp then emit ctx (Isa.St (w, value_reg, 0, a))
    else emit ctx (Isa.Stx (w, value_reg, a));
    free_reg ctx a

let epilogue_label = "epilogue"

let gen_stmt ctx (s : Ir.Tree.stmt) =
  match s with
  | Ir.Tree.Sasgn (ty, addr, Ir.Tree.Call (cty, callee)) ->
    (* call result stored directly; args are the current stack *)
    gen_call ctx cty callee;
    let rd = alloc_reg ctx in
    emit ctx (Isa.Mov (rd, 0));
    gen_store ctx ty addr rd;
    free_reg ctx rd
  | Ir.Tree.Sasgn (ty, addr, value) ->
    eval ctx value;
    let v = pop_reg ctx in
    gen_store ctx ty addr v;
    free_reg ctx v
  | Ir.Tree.Sarg (_, t) ->
    (* leave the value on the stack; consumed by the next call *)
    eval ctx t
  | Ir.Tree.Scall (ty, callee) -> gen_call ctx ty callee
  | Ir.Tree.Scnd (rel, _, a, b, lbl) -> (
    let vrel = relop_of_ir rel in
    match b with
    | Ir.Tree.Cnst (_, _, v) when ctx.features.Isa.has_imm_alu ->
      eval ctx a;
      let r = pop_reg ctx in
      emit ctx (Isa.Bri (vrel, r, v, lbl));
      free_reg ctx r
    | _ ->
      eval ctx a;
      eval ctx b;
      let rb = pop_reg ctx in
      let ra_ = pop_reg ctx in
      emit ctx (Isa.Br (vrel, ra_, rb, lbl));
      free_reg ctx ra_;
      free_reg ctx rb)
  | Ir.Tree.Sjump lbl -> emit ctx (Isa.Jmp lbl)
  | Ir.Tree.Slabel lbl -> emit ctx (Isa.Label lbl)
  | Ir.Tree.Sret (_, None) -> emit ctx (Isa.Jmp epilogue_label)
  | Ir.Tree.Sret (_, Some t) ->
    eval ctx t;
    let r = pop_reg ctx in
    emit ctx (Isa.Mov (0, r));
    free_reg ctx r;
    emit ctx (Isa.Jmp epilogue_label)

let gen_func ?(features = Isa.full_risc) (_prog : Ir.Tree.program)
    (f : Ir.Tree.func) : Isa.vfunc =
  let nformals = List.length f.Ir.Tree.formals in
  if nformals > max_reg_args then
    fail "%s: more than %d formals" f.Ir.Tree.fname max_reg_args;
  let ctx =
    {
      features;
      frame_size = f.Ir.Tree.frame_size;
      nformals;
      out = [];
      stack = [];
      free = eval_regs;
      used = [];
      nscratch = 0;
      makes_call = false;
      next_lbl = 0;
    }
  in
  (* Without register-displacement addressing the prologue needs a
     scratch register to address the formal spill slots; reserve n13 so
     it is saved before being clobbered. *)
  if (not features.Isa.has_reg_disp) && nformals > 0 then ctx.used <- [ 13 ];
  List.iter (gen_stmt ctx) f.Ir.Tree.body;
  let body = List.rev ctx.out in
  (* frame layout now fully known *)
  let saved_regs = List.sort_uniq compare ctx.used in
  let save_base = scratch_off ctx ctx.nscratch in
  let nsaved = List.length saved_regs in
  let ra_slot = save_base + (4 * nsaved) in
  let frame_total = ra_slot + (if ctx.makes_call then 4 else 0) in
  let frame_total = (frame_total + 7) / 8 * 8 in
  let store_formal i =
    let off = formal_area ctx + (4 * i) in
    if features.Isa.has_reg_disp then [ Isa.St (Isa.W, i, off, Isa.sp) ]
    else
      (if features.Isa.has_imm_alu then [ Isa.Alui (Isa.Add, 13, Isa.sp, off) ]
       else [ Isa.Li (13, off); Isa.Alu (Isa.Add, 13, Isa.sp, 13) ])
      @ [ Isa.Stx (Isa.W, i, 13) ]
  in
  let prologue =
    (Isa.Enter frame_total
     :: List.mapi (fun i r -> Isa.Spill (r, save_base + (4 * i))) saved_regs)
    @ (if ctx.makes_call then [ Isa.Spill (Isa.ra, ra_slot) ] else [])
    @ List.concat (List.init nformals store_formal)
  in
  let epilogue =
    (Isa.Label epilogue_label
     :: (if ctx.makes_call then [ Isa.Reload (Isa.ra, ra_slot) ] else []))
    @ List.mapi (fun i r -> Isa.Reload (r, save_base + (4 * i))) saved_regs
    @ [ Isa.Exit frame_total; Isa.Rjr ]
  in
  { Isa.name = f.Ir.Tree.fname; code = prologue @ body @ epilogue }

let gen_program ?(features = Isa.full_risc) (prog : Ir.Tree.program) :
    Isa.vprogram =
  let funcs = List.map (gen_func ~features prog) prog.Ir.Tree.funcs in
  let globals =
    List.map
      (fun g -> (g.Ir.Tree.gname, g.Ir.Tree.gsize, g.Ir.Tree.ginit))
      prog.Ir.Tree.globals
  in
  let vp = { Isa.globals; funcs } in
  match Isa.validate vp with
  | [] -> vp
  | issues -> fail "generated invalid VM code:\n%s" (String.concat "\n" issues)
