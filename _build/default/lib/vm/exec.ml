type state = {
  mem : Bytes.t;
  regs : int array;
  out_buf : Buffer.t;
  input : string;
  mutable in_pos : int;
}

exception Trap of string

let trap fmt = Printf.ksprintf (fun m -> raise (Trap m)) fmt

let create ?(mem_size = 1 lsl 22) ?(input = "") () =
  let st =
    {
      mem = Bytes.make mem_size '\000';
      regs = Array.make Isa.num_regs 0;
      out_buf = Buffer.create 256;
      input;
      in_pos = 0;
    }
  in
  st.regs.(Isa.sp) <- mem_size - 16;
  st

let norm v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let check st a n =
  if a < 0 || a + n > Bytes.length st.mem then
    trap "memory access out of range: %d" a

let load st w a =
  match w with
  | Isa.B ->
    check st a 1;
    let v = Char.code (Bytes.get st.mem a) in
    if v land 0x80 <> 0 then v - 0x100 else v
  | Isa.H ->
    check st a 2;
    let v =
      Char.code (Bytes.get st.mem a)
      lor (Char.code (Bytes.get st.mem (a + 1)) lsl 8)
    in
    if v land 0x8000 <> 0 then v - 0x10000 else v
  | Isa.W ->
    check st a 4;
    norm
      (Char.code (Bytes.get st.mem a)
      lor (Char.code (Bytes.get st.mem (a + 1)) lsl 8)
      lor (Char.code (Bytes.get st.mem (a + 2)) lsl 16)
      lor (Char.code (Bytes.get st.mem (a + 3)) lsl 24))

let store st w a v =
  match w with
  | Isa.B ->
    check st a 1;
    Bytes.set st.mem a (Char.chr (v land 0xff))
  | Isa.H ->
    check st a 2;
    Bytes.set st.mem a (Char.chr (v land 0xff));
    Bytes.set st.mem (a + 1) (Char.chr ((v asr 8) land 0xff))
  | Isa.W ->
    check st a 4;
    Bytes.set st.mem a (Char.chr (v land 0xff));
    Bytes.set st.mem (a + 1) (Char.chr ((v asr 8) land 0xff));
    Bytes.set st.mem (a + 2) (Char.chr ((v asr 16) land 0xff));
    Bytes.set st.mem (a + 3) (Char.chr ((v asr 24) land 0xff))

let alu op a b =
  match op with
  | Isa.Add -> norm (a + b)
  | Isa.Sub -> norm (a - b)
  | Isa.Mul -> norm (a * b)
  | Isa.Div -> if b = 0 then trap "division by zero" else norm (a / b)
  | Isa.Mod -> if b = 0 then trap "modulo by zero" else norm (a mod b)
  | Isa.And -> norm (a land b)
  | Isa.Or -> norm (a lor b)
  | Isa.Xor -> norm (a lxor b)
  | Isa.Shl -> norm (a lsl (b land 31))
  | Isa.Shr -> norm (a asr (b land 31))

let init_globals st table globals =
  List.iter
    (fun (name, _, init) ->
      match init with
      | None -> ()
      | Some bytes ->
        let base = Hashtbl.find table name in
        List.iteri
          (fun i b -> Bytes.set st.mem (base + i) (Char.chr (b land 0xff)))
          bytes)
    globals

let builtin st name =
  match name with
  | "putchar" ->
    Buffer.add_char st.out_buf (Char.chr (st.regs.(0) land 0xff));
    st.regs.(0) <- st.regs.(0) land 0xff
  | "getchar" ->
    if st.in_pos < String.length st.input then begin
      st.regs.(0) <- Char.code st.input.[st.in_pos];
      st.in_pos <- st.in_pos + 1
    end
    else st.regs.(0) <- -1
  | "print_int" -> Buffer.add_string st.out_buf (string_of_int st.regs.(0))
  | "abort" -> trap "abort called"
  | _ -> trap "unknown builtin %s" name

let step_data st ~branch_target ~sym_addr (i : Isa.instr) =
  ignore branch_target;
  let regs = st.regs in
  match i with
  | Isa.Label _ -> ()
  | Isa.Ld (w, rd, imm, rs) -> regs.(rd) <- load st w (regs.(rs) + imm)
  | Isa.St (w, rs2, imm, rs1) -> store st w (regs.(rs1) + imm) regs.(rs2)
  | Isa.Ldx (w, rd, rs) -> regs.(rd) <- load st w regs.(rs)
  | Isa.Stx (w, rs2, rs1) -> store st w regs.(rs1) regs.(rs2)
  | Isa.Li (rd, v) -> regs.(rd) <- norm v
  | Isa.La (rd, s) -> regs.(rd) <- sym_addr s
  | Isa.Mov (rd, rs) -> regs.(rd) <- regs.(rs)
  | Isa.Alu (op, rd, a, b) -> regs.(rd) <- alu op regs.(a) regs.(b)
  | Isa.Alui (op, rd, a, v) -> regs.(rd) <- alu op regs.(a) v
  | Isa.Neg (rd, rs) -> regs.(rd) <- norm (-regs.(rs))
  | Isa.Not (rd, rs) -> regs.(rd) <- norm (lnot regs.(rs))
  | Isa.Sext (Isa.B, rd, rs) ->
    let v = regs.(rs) land 0xff in
    regs.(rd) <- (if v land 0x80 <> 0 then v - 0x100 else v)
  | Isa.Sext (Isa.H, rd, rs) ->
    let v = regs.(rs) land 0xffff in
    regs.(rd) <- (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | Isa.Sext (Isa.W, rd, rs) -> regs.(rd) <- regs.(rs)
  | Isa.Enter k -> regs.(Isa.sp) <- regs.(Isa.sp) - k
  | Isa.Exit k -> regs.(Isa.sp) <- regs.(Isa.sp) + k
  | Isa.Spill (r, off) -> store st Isa.W (regs.(Isa.sp) + off) regs.(r)
  | Isa.Reload (r, off) -> regs.(r) <- load st Isa.W (regs.(Isa.sp) + off)
  | Isa.Br _ | Isa.Bri _ | Isa.Jmp _ | Isa.Call _ | Isa.Callr _ | Isa.Rjr ->
    invalid_arg "Exec.step_data: control instruction"
