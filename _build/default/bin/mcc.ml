(* mcc — the MiniC compiler driver.

   Compiles a MiniC source file and emits the requested representation,
   or runs the program on one of the execution engines:

     mcc prog.c --emit ir          lcc-style tree IR (textual)
     mcc prog.c --emit vm          OmniVM assembly
     mcc prog.c --emit native     x86-like assembly
     mcc prog.c --run vm           compile and execute (default engine)
     mcc prog.c --run native|brisc|jit
     mcc prog.c --sizes            one-line size report
*)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let gen ~features ~optimize ir =
  let vp = Vm.Codegen.gen_program ~features ir in
  if optimize then Vm.Peephole.optimize vp else vp

let features_of_string = function
  | "full" -> Ok Vm.Isa.full_risc
  | "no-imm" -> Ok Vm.Isa.minus_immediates
  | "no-disp" -> Ok Vm.Isa.minus_reg_disp
  | "minimal" -> Ok Vm.Isa.minimal
  | s -> Error (Printf.sprintf "unknown feature set %S" s)

let main file emit run_engine input_file features_name optimize =
  let src = read_file file in
  let features =
    match features_of_string features_name with
    | Ok f -> f
    | Error m ->
      prerr_endline m;
      exit 2
  in
  let input = match input_file with None -> "" | Some f -> read_file f in
  match Cc.Lower.compile src with
  | exception Cc.Lower.Compile_error (m, pos) ->
    Printf.eprintf "%s:%d:%d: error: %s\n" file pos.Cc.Ast.line pos.Cc.Ast.col m;
    exit 1
  | exception Cc.Parser.Parse_error (m, pos) ->
    Printf.eprintf "%s:%d:%d: parse error: %s\n" file pos.Cc.Ast.line pos.Cc.Ast.col m;
    exit 1
  | exception Cc.Lexer.Lex_error (m, pos) ->
    Printf.eprintf "%s:%d:%d: lex error: %s\n" file pos.Cc.Ast.line pos.Cc.Ast.col m;
    exit 1
  | ir -> (
    match emit with
    | Some "ir" -> print_string (Ir.Printer.program_to_string ir)
    | Some "vm" ->
      let vp = gen ~features ~optimize ir in
      print_string (Vm.Isa.program_to_string vp)
    | Some "native" ->
      let vp = gen ~features ~optimize ir in
      print_string (Native.Mach.program_to_string (Native.Compile.compile_program vp))
    | Some other ->
      Printf.eprintf "unknown --emit target %S (ir|vm|native)\n" other;
      exit 2
    | None -> (
      let vp = gen ~features ~optimize ir in
      match run_engine with
      | "sizes" ->
        let np = Native.Compile.compile_program vp in
        Printf.printf "%s: vm %d B, x86-like %d B, sparc-like %d B, wire %d B\n"
          file (Vm.Encode.program_size vp)
          (Native.Mach.program_size np)
          (Native.Sparc.program_size vp)
          (String.length (Wire.compress ir))
      | "vm" ->
        let r = Vm.Interp.run ~input vp in
        print_string r.Vm.Interp.output;
        exit (r.Vm.Interp.exit_code land 255)
      | "native" ->
        let r = Native.Sim.run ~input (Native.Compile.compile_program vp) in
        print_string r.Native.Sim.output;
        exit (r.Native.Sim.exit_code land 255)
      | "brisc" ->
        let img = Brisc.compress vp in
        let r = Brisc.Interp.run ~input img in
        print_string r.Brisc.Interp.output;
        exit (r.Brisc.Interp.exit_code land 255)
      | "jit" ->
        let img = Brisc.compress vp in
        let r = Native.Sim.run ~input (Brisc.Jit.compile img) in
        print_string r.Native.Sim.output;
        exit (r.Native.Sim.exit_code land 255)
      | other ->
        Printf.eprintf "unknown engine %S (vm|native|brisc|jit|sizes)\n" other;
        exit 2))

open Cmdliner

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let emit =
  Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"FORM"
         ~doc:"Print a representation instead of running: ir, vm or native.")

let run_engine =
  Arg.(value & opt string "vm" & info [ "run" ] ~docv:"ENGINE"
         ~doc:"Execution engine: vm (default), native, brisc, jit, or sizes.")

let input_file =
  Arg.(value & opt (some file) None & info [ "input" ] ~docv:"FILE"
         ~doc:"File fed to the program as standard input.")

let features =
  Arg.(value & opt string "full" & info [ "features" ] ~docv:"SET"
         ~doc:"ISA variant: full, no-imm, no-disp or minimal (paper section 5).")

let optimize =
  Arg.(value & flag & info [ "O"; "optimize" ]
         ~doc:"Run the peephole optimizer over the generated VM code.")

let cmd =
  let doc = "MiniC compiler for the code-compression testbed" in
  Cmd.v (Cmd.info "mcc" ~doc)
    Term.(const main $ file $ emit $ run_engine $ input_file $ features
          $ optimize)

let () = exit (Cmd.eval cmd)
