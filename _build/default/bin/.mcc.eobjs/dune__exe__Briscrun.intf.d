bin/briscrun.mli:
