bin/wirec.ml: Arg Cc Cmd Cmdliner Ir List Printf String Term Wire
