bin/briscrun.ml: Arg Brisc Cmd Cmdliner Native Printf Term Vm
