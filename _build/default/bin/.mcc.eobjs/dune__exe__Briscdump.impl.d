bin/briscdump.ml: Arg Array Brisc Cmd Cmdliner List Printf String Term
