bin/briscdump.mli:
