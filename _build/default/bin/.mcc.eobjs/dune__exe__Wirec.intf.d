bin/wirec.mli:
