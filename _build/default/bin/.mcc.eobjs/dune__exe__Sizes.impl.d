bin/sizes.ml: Brisc Cc Corpus List Native Printf String Vm Wire Zip
