bin/briscc.ml: Arg Brisc Cc Cmd Cmdliner Printf String Term Vm
