bin/sizes.mli:
