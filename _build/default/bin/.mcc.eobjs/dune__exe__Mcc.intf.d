bin/mcc.mli:
