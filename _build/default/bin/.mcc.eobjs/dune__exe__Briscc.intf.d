bin/briscc.mli:
