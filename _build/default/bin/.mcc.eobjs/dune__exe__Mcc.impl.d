bin/mcc.ml: Arg Brisc Cc Cmd Cmdliner Ir Native Printf String Term Vm Wire
