(* sizes — size report across the bundled corpus. *)

let () =
  Printf.printf "%-8s %8s %8s %8s %8s %8s %8s\n" "program" "vm" "x86" "sparc"
    "gz(x86)" "wire" "brisc";
  List.iter
    (fun (e : Corpus.Programs.entry) ->
      let ir = Cc.Lower.compile e.Corpus.Programs.source in
      let vp = Vm.Codegen.gen_program ir in
      let np = Native.Compile.compile_program vp in
      let x86_img = Native.Mach.encode_program np in
      let img = Brisc.compress vp in
      Printf.printf "%-8s %8d %8d %8d %8d %8d %8d\n" e.Corpus.Programs.name
        (Vm.Encode.program_size vp)
        (Native.Mach.program_size np)
        (Native.Sparc.program_size vp)
        (String.length (Zip.Deflate.compress x86_img))
        (String.length (Wire.compress ir))
        (Brisc.Emit.total_size img))
    Corpus.Programs.all
