(* Tests for the MiniC frontend: lexer, parser, semantic checks, and
   end-to-end language semantics (compiled to the VM and executed). *)

(* ---- helpers ---- *)

let run ?(input = "") src =
  let ir = Cc.Lower.compile src in
  let vp = Vm.Codegen.gen_program ir in
  Vm.Interp.run ~input vp

let check_exit name expected src =
  Alcotest.(check int) name expected (run src).Vm.Interp.exit_code

let check_out name expected src =
  Alcotest.(check string) name expected (run src).Vm.Interp.output

let expect_compile_error name src =
  match Cc.Lower.compile src with
  | exception Cc.Lower.Compile_error _ -> ()
  | exception Cc.Parser.Parse_error _ -> ()
  | exception Cc.Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected a compile error")

(* ---- lexer ---- *)

let toks src =
  List.filter_map
    (fun l -> match l.Cc.Lexer.tok with Cc.Lexer.EOF -> None | t -> Some t)
    (Cc.Lexer.tokenize src)

let test_lex_ints () =
  Alcotest.(check bool) "decimal" true
    (toks "42" = [ Cc.Lexer.INT_LIT 42 ]);
  Alcotest.(check bool) "hex" true
    (toks "0xFF" = [ Cc.Lexer.INT_LIT 255 ]);
  Alcotest.(check bool) "zero" true (toks "0" = [ Cc.Lexer.INT_LIT 0 ])

let test_lex_chars () =
  Alcotest.(check bool) "plain" true (toks "'a'" = [ Cc.Lexer.CHAR_LIT 'a' ]);
  Alcotest.(check bool) "newline" true (toks "'\\n'" = [ Cc.Lexer.CHAR_LIT '\n' ]);
  Alcotest.(check bool) "nul" true (toks "'\\0'" = [ Cc.Lexer.CHAR_LIT '\000' ])

let test_lex_strings () =
  Alcotest.(check bool) "escape" true
    (toks "\"a\\tb\"" = [ Cc.Lexer.STRING_LIT "a\tb" ])

let test_lex_comments () =
  Alcotest.(check bool) "line" true (toks "1 // comment\n2" = [ Cc.Lexer.INT_LIT 1; Cc.Lexer.INT_LIT 2 ]);
  Alcotest.(check bool) "block" true (toks "1 /* x */ 2" = [ Cc.Lexer.INT_LIT 1; Cc.Lexer.INT_LIT 2 ])

let test_lex_longest_match () =
  Alcotest.(check bool) "shift vs lt" true
    (toks "a<<=b" = [ Cc.Lexer.IDENT "a"; Cc.Lexer.PUNCT "<<="; Cc.Lexer.IDENT "b" ]);
  Alcotest.(check bool) "le" true
    (toks "a<=b" = [ Cc.Lexer.IDENT "a"; Cc.Lexer.PUNCT "<="; Cc.Lexer.IDENT "b" ])

let test_lex_errors () =
  (match Cc.Lexer.tokenize "'unterminated" with
  | exception Cc.Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "char");
  (match Cc.Lexer.tokenize "\"unterminated" with
  | exception Cc.Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "string");
  match Cc.Lexer.tokenize "/* unterminated" with
  | exception Cc.Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "comment"

let test_lex_keywords () =
  Alcotest.(check bool) "kw vs ident" true
    (toks "int integer" = [ Cc.Lexer.KW "int"; Cc.Lexer.IDENT "integer" ])

(* ---- parser / precedence (checked by evaluation) ---- *)

let test_precedence_mul_add () = check_exit "2+3*4" 14 "int main() { return 2 + 3 * 4; }"
let test_precedence_parens () = check_exit "(2+3)*4" 20 "int main() { return (2 + 3) * 4; }"
let test_precedence_shift () = check_exit "1<<2+1" 8 "int main() { return 1 << 2 + 1; }"
let test_precedence_cmp_bitand () =
  (* & binds looser than == in C *)
  check_exit "x&1==1" 1 "int main() { int x = 3; return x & 1 == 1; }"
let test_assoc_sub () = check_exit "10-3-2" 5 "int main() { return 10 - 3 - 2; }"
let test_assoc_assign () =
  check_exit "a=b=5" 10 "int main() { int a; int b; a = b = 5; return a + b; }"
let test_unary_binds_tight () = check_exit "-2*3" (-6) "int main() { return -2 * 3; }"
let test_cond_expr_nested () =
  check_exit "nested ?:" 2 "int main() { int x = 5; return x < 3 ? 1 : x < 10 ? 2 : 3; }"

let test_parse_errors () =
  expect_compile_error "missing semi" "int main() { return 1 }";
  expect_compile_error "missing paren" "int main( { return 1; }";
  expect_compile_error "bad array size" "int main() { int a[x]; return 0; }";
  expect_compile_error "stray rbrace" "int main() { } }"

(* ---- semantic checks ---- *)

let test_sema_unknown_var () =
  expect_compile_error "unknown var" "int main() { return nope; }"

let test_sema_unknown_func () =
  expect_compile_error "unknown func" "int main() { return nope(); }"

let test_sema_arity () =
  expect_compile_error "too few"
    "int f(int a, int b) { return a; } int main() { return f(1); }";
  expect_compile_error "too many"
    "int f(int a) { return a; } int main() { return f(1, 2); }"

let test_sema_void_value () =
  expect_compile_error "void used"
    "void f() { } int main() { return f(); }"

let test_sema_break_outside () =
  expect_compile_error "break" "int main() { break; return 0; }";
  expect_compile_error "continue" "int main() { continue; return 0; }"

let test_sema_redefinition () =
  expect_compile_error "local twice" "int main() { int x; int x; return 0; }";
  expect_compile_error "func twice" "int f() { return 0; } int f() { return 1; } int main() { return 0; }";
  expect_compile_error "global twice" "int g; int g; int main() { return 0; }"

let test_sema_return_mismatch () =
  expect_compile_error "void returns value" "void f() { return 1; } int main() { return 0; }";
  expect_compile_error "int returns nothing used" "int main() { return; }"

let test_sema_deref_int () =
  expect_compile_error "deref int" "int main() { int x; return *x; }"

let test_sema_assign_nonlvalue () =
  expect_compile_error "assign to call"
    "int f() { return 0; } int main() { f() = 3; return 0; }"

let test_sema_nonconst_global_init () =
  expect_compile_error "nonconst init"
    "int g() { return 1; } int h = g(); int main() { return 0; }"

let test_sema_scopes () =
  (* an inner block variable disappears at block end *)
  expect_compile_error "out of scope"
    "int main() { if (1) { int x = 1; } return x; }";
  (* shadowing is allowed *)
  check_exit "shadow" 1
    "int main() { int x = 1; if (1) { int x = 2; x = 3; } return x; }"

(* ---- language semantics, end to end ---- *)

let test_arith_div_trunc () =
  check_exit "div toward zero" (-2) "int main() { return -7 / 3; }";
  check_exit "mod sign" (-1) "int main() { return -7 % 3; }"

let test_arith_wrap () =
  check_exit "wraps 32-bit" 0 {|
int main() {
  int big = 2147483647;
  big = big + 1;
  return big == -2147483648 ? 0 : 1;
}|}

let test_const_fold_matches_runtime () =
  (* the same expression folded and computed must agree *)
  check_exit "fold agrees" 0 {|
int main() {
  int a = 1000000;
  int folded = (1000000 * 4096) >> 3;
  int computed = (a * 4096) >> 3;
  return folded == computed ? 0 : 1;
}|}

let test_short_circuit_and () =
  check_out "rhs not evaluated" "" {|
int main() {
  int zero = 0;
  if (zero && putchar('x')) { }
  return 0;
}|}

let test_short_circuit_or () =
  check_out "rhs not evaluated" "" {|
int main() {
  int one = 1;
  if (one || putchar('y')) { }
  return 0;
}|}

let test_logical_values () =
  check_exit "and value" 1 "int main() { int a = 2; int b = 3; return a && b; }";
  check_exit "not value" 0 "int main() { return !5; }";
  check_exit "or value" 1 "int main() { int z = 0; return z || 7; }"

let test_char_signedness () =
  check_exit "char sign extends" (-106) "int main() { char c = 150; return c; }"

let test_short_narrowing () =
  check_exit "short wraps" (-25536) "int main() { short s = 40000; return s; }"

let test_char_array_store_load () =
  check_exit "byte store" 200 {|
char buf[4];
int main() { buf[1] = 200; return buf[1] & 255; }|}

let test_pointer_arith_scaling () =
  check_exit "int* scales by 4" 30 {|
int a[4];
int main() {
  int *p = a;
  a[2] = 30;
  return *(p + 2);
}|}

let test_pointer_diff () =
  check_exit "pointer difference" 3 {|
int a[8];
int main() { int *p = &a[5]; int *q = &a[2]; return p - q; }|}

let test_pointer_swap_via_args () =
  check_exit "swap" 1 {|
void swap(int *x, int *y) { int t = *x; *x = *y; *y = t; }
int main() { int a = 2; int b = 1; swap(&a, &b); return a; }|}

let test_global_scalar_init () =
  check_exit "global init" 77 "int g = 77; int main() { return g; }"

let test_global_array_init () =
  check_exit "array init" 6 {|
int t[3] = { 1, 2, 3 };
int main() { return t[0] + t[1] + t[2]; }|}

let test_global_string_init () =
  check_exit "string global" 104 {|
char msg[6] = "hello";
int main() { return msg[0] + msg[5]; }|}

let test_string_literal_interning () =
  (* identical literals share one global *)
  check_exit "same pointer" 1 {|
int main() { char *a = "dup"; char *b = "dup"; return a == b; }|}

let test_recursion_ackermann_small () =
  check_exit "ackermann(2,3)" 9 {|
int ack(int m, int n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
int main() { return ack(2, 3); }|}

let test_mutual_recursion () =
  (* forward references need no prototypes: signatures are collected in
     a first pass *)
  check_exit "is_even 10" 1 {|
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main() { return is_even(10); }|}

let test_compound_assign_all () =
  check_exit "compound ops" 0 {|
int main() {
  int x = 100;
  x += 10; if (x != 110) return 1;
  x -= 20; if (x != 90) return 2;
  x *= 2;  if (x != 180) return 3;
  x /= 3;  if (x != 60) return 4;
  x %= 7;  if (x != 4) return 5;
  x <<= 3; if (x != 32) return 6;
  x >>= 2; if (x != 8) return 7;
  x |= 5;  if (x != 13) return 8;
  x &= 6;  if (x != 4) return 9;
  x ^= 7;  if (x != 3) return 10;
  return 0;
}|}

let test_incr_decr () =
  check_exit "postfix value" 0 {|
int main() {
  int i = 5;
  int a = i++;
  if (a != 5 || i != 6) return 1;
  int b = i--;
  if (b != 6 || i != 5) return 2;
  int c = ++i;
  if (c != 6 || i != 6) return 3;
  return 0;
}|}

let test_sizeof () =
  check_exit "sizeof" 0 {|
int main() {
  if (sizeof(int) != 4) return 1;
  if (sizeof(char) != 1) return 2;
  if (sizeof(short) != 2) return 3;
  if (sizeof(int*) != 4) return 4;
  return 0;
}|}

let test_for_scoping () =
  check_exit "iterator scoped" 10 {|
int main() {
  int s = 0;
  for (int i = 0; i < 5; i++) s += i;
  for (int i = 0; i < 1; i++) s += 0;
  return s;
}|}

let test_nested_loops_break_continue () =
  check_exit "break/continue nesting" 12 {|
int main() {
  int s = 0;
  for (int i = 0; i < 5; i++) {
    if (i == 3) continue;
    for (int j = 0; j < 5; j++) {
      if (j == 3) break;
      s = s + 1;
    }
  }
  return s;
}|}

let test_do_while_runs_once () =
  check_exit "do-while" 1 "int main() { int n = 0; do { n++; } while (0); return n; }"

let test_function_six_args () =
  check_exit "six args" 21 {|
int sum6(int a, int b, int c, int d, int e, int f) {
  return a + b + c + d + e + f;
}
int main() { return sum6(1, 2, 3, 4, 5, 6); }|}

let test_too_many_args_rejected () =
  let src = {|
int f(int a, int b, int c, int d, int e, int g, int h) { return 0; }
int main() { return f(1,2,3,4,5,6,7); }|} in
  let ir = Cc.Lower.compile src in
  match Vm.Codegen.gen_program ir with
  | exception Vm.Codegen.Codegen_error _ -> ()
  | _ -> Alcotest.fail "7 formals should be rejected by codegen"

let test_deep_expression_spills () =
  (* a balanced expression tree deeper than the 10-register eval stack
     forces the codegen to spill to scratch frame slots *)
  let rec balanced d = if d = 0 then "1" else
    let s = balanced (d - 1) in "(" ^ s ^ "+" ^ s ^ ")"
  in
  let src = Printf.sprintf "int main() { return %s - 2000; }" (balanced 11) in
  check_exit "deep expr" 48 src

let test_comparison_chains_as_values () =
  check_exit "cmp value" 1 "int main() { int x = 3; int y = (x > 2) + (x > 5); return y; }"

let test_argument_evaluation_with_calls () =
  check_out "nested calls in args" "abc" {|
int emit(int c) { putchar(c); return c; }
int pair(int x, int y) { return y; }
int main() {
  pair(emit('a'), pair(emit('b'), emit('c')));
  return 0;
}|}

let test_getchar_eof () =
  let r = run ~input:"" "int main() { return getchar() == -1; }" in
  Alcotest.(check int) "eof" 1 r.Vm.Interp.exit_code

let () =
  Alcotest.run "cc"
    [
      ( "lexer",
        [
          Alcotest.test_case "integers" `Quick test_lex_ints;
          Alcotest.test_case "chars" `Quick test_lex_chars;
          Alcotest.test_case "strings" `Quick test_lex_strings;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "longest match" `Quick test_lex_longest_match;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "keywords" `Quick test_lex_keywords;
        ] );
      ( "parser",
        [
          Alcotest.test_case "mul over add" `Quick test_precedence_mul_add;
          Alcotest.test_case "parens" `Quick test_precedence_parens;
          Alcotest.test_case "shift vs add" `Quick test_precedence_shift;
          Alcotest.test_case "cmp vs bitand" `Quick test_precedence_cmp_bitand;
          Alcotest.test_case "sub associativity" `Quick test_assoc_sub;
          Alcotest.test_case "assign associativity" `Quick test_assoc_assign;
          Alcotest.test_case "unary tightness" `Quick test_unary_binds_tight;
          Alcotest.test_case "nested ?:" `Quick test_cond_expr_nested;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "sema",
        [
          Alcotest.test_case "unknown variable" `Quick test_sema_unknown_var;
          Alcotest.test_case "unknown function" `Quick test_sema_unknown_func;
          Alcotest.test_case "arity" `Quick test_sema_arity;
          Alcotest.test_case "void value" `Quick test_sema_void_value;
          Alcotest.test_case "break/continue placement" `Quick test_sema_break_outside;
          Alcotest.test_case "redefinition" `Quick test_sema_redefinition;
          Alcotest.test_case "return mismatch" `Quick test_sema_return_mismatch;
          Alcotest.test_case "deref non-pointer" `Quick test_sema_deref_int;
          Alcotest.test_case "assign non-lvalue" `Quick test_sema_assign_nonlvalue;
          Alcotest.test_case "non-const global init" `Quick test_sema_nonconst_global_init;
          Alcotest.test_case "scoping" `Quick test_sema_scopes;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "division truncates" `Quick test_arith_div_trunc;
          Alcotest.test_case "32-bit wrap" `Quick test_arith_wrap;
          Alcotest.test_case "folding matches runtime" `Quick test_const_fold_matches_runtime;
          Alcotest.test_case "&& short-circuits" `Quick test_short_circuit_and;
          Alcotest.test_case "|| short-circuits" `Quick test_short_circuit_or;
          Alcotest.test_case "logical values" `Quick test_logical_values;
          Alcotest.test_case "char signedness" `Quick test_char_signedness;
          Alcotest.test_case "short narrowing" `Quick test_short_narrowing;
          Alcotest.test_case "char array" `Quick test_char_array_store_load;
          Alcotest.test_case "pointer scaling" `Quick test_pointer_arith_scaling;
          Alcotest.test_case "pointer difference" `Quick test_pointer_diff;
          Alcotest.test_case "pointer args" `Quick test_pointer_swap_via_args;
          Alcotest.test_case "global scalar init" `Quick test_global_scalar_init;
          Alcotest.test_case "global array init" `Quick test_global_array_init;
          Alcotest.test_case "global string init" `Quick test_global_string_init;
          Alcotest.test_case "string interning" `Quick test_string_literal_interning;
          Alcotest.test_case "recursion" `Quick test_recursion_ackermann_small;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "compound assignment" `Quick test_compound_assign_all;
          Alcotest.test_case "increment/decrement" `Quick test_incr_decr;
          Alcotest.test_case "sizeof" `Quick test_sizeof;
          Alcotest.test_case "for scoping" `Quick test_for_scoping;
          Alcotest.test_case "break/continue" `Quick test_nested_loops_break_continue;
          Alcotest.test_case "do-while" `Quick test_do_while_runs_once;
          Alcotest.test_case "six arguments" `Quick test_function_six_args;
          Alcotest.test_case "too many arguments" `Quick test_too_many_args_rejected;
          Alcotest.test_case "register spilling" `Quick test_deep_expression_spills;
          Alcotest.test_case "comparisons as values" `Quick test_comparison_chains_as_values;
          Alcotest.test_case "calls in arguments" `Quick test_argument_evaluation_with_calls;
          Alcotest.test_case "getchar eof" `Quick test_getchar_eof;
        ] );
    ]
