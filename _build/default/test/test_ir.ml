(* Tests for the tree IR: printing, parsing, patternization, validation. *)

let qcheck = QCheck_alcotest.to_alcotest

(* ---- generators for random IR ---- *)

let gen_ty = QCheck.Gen.oneofl [ Ir.Op.I; Ir.Op.C; Ir.Op.S; Ir.Op.P ]

let gen_binop =
  QCheck.Gen.oneofl
    [ Ir.Op.Add; Ir.Op.Sub; Ir.Op.Mul; Ir.Op.Div; Ir.Op.Mod; Ir.Op.Band;
      Ir.Op.Bor; Ir.Op.Bxor; Ir.Op.Lsh; Ir.Op.Rsh ]

let gen_relop =
  QCheck.Gen.oneofl [ Ir.Op.Eq; Ir.Op.Ne; Ir.Op.Lt; Ir.Op.Le; Ir.Op.Gt; Ir.Op.Ge ]

let gen_small_int = QCheck.Gen.int_range (-200) 200

let rec gen_tree depth st =
  let open QCheck.Gen in
  if depth <= 0 then
    (oneof
       [
         map Ir.Tree.cnst gen_small_int;
         map (fun v -> Ir.Tree.addrl (abs v mod 96)) gen_small_int;
         map (fun v -> Ir.Tree.addrf (4 * (abs v mod 4))) gen_small_int;
         return (Ir.Tree.Addrg "g");
       ])
      st
  else
    (frequency
       [
         (2, map Ir.Tree.cnst gen_small_int);
         (2, map (fun v -> Ir.Tree.addrl (abs v mod 96)) gen_small_int);
         ( 3,
           map2
             (fun ty t -> Ir.Tree.Indir (ty, t))
             gen_ty
             (gen_tree (depth - 1)) );
         ( 3,
           map3
             (fun op a b -> Ir.Tree.Binop (Ir.Op.I, op, a, b))
             gen_binop
             (gen_tree (depth - 1))
             (gen_tree (depth - 1)) );
         (1, map (fun t -> Ir.Tree.Neg (Ir.Op.I, t)) (gen_tree (depth - 1)));
         (1, map (fun t -> Ir.Tree.Bcom (Ir.Op.I, t)) (gen_tree (depth - 1)));
         ( 1,
           map
             (fun t -> Ir.Tree.Cvt (Ir.Op.C, Ir.Op.I, t))
             (gen_tree (depth - 1)) );
       ])
      st

let gen_stmt st =
  let open QCheck.Gen in
  (frequency
     [
       ( 4,
         map2
           (fun a v -> Ir.Tree.Sasgn (Ir.Op.I, a, v))
           (gen_tree 1) (gen_tree 2) );
       (2, map (fun t -> Ir.Tree.Sarg (Ir.Op.I, t)) (gen_tree 2));
       (1, return (Ir.Tree.Scall (Ir.Op.V, Ir.Tree.Addrg "f")));
       ( 2,
         map3
           (fun rel a b -> Ir.Tree.Scnd (rel, Ir.Op.I, a, b, "L0"))
           gen_relop (gen_tree 1) (gen_tree 1) );
       (1, return (Ir.Tree.Sjump "L0"));
       (1, return (Ir.Tree.Slabel "L0"));
       (1, return (Ir.Tree.Sret (Ir.Op.V, None)));
       (1, map (fun t -> Ir.Tree.Sret (Ir.Op.I, Some t)) (gen_tree 2));
     ])
    st

let arb_stmt = QCheck.make ~print:Ir.Printer.stmt_to_string gen_stmt

(* ---- width assignment ---- *)

let test_width_for () =
  Alcotest.(check bool) "w8" true (Ir.Op.width_for 100 = Ir.Op.W8);
  Alcotest.(check bool) "w8 low" true (Ir.Op.width_for (-128) = Ir.Op.W8);
  Alcotest.(check bool) "w16" true (Ir.Op.width_for 1000 = Ir.Op.W16);
  Alcotest.(check bool) "w16 edge" true (Ir.Op.width_for 32767 = Ir.Op.W16);
  Alcotest.(check bool) "w32" true (Ir.Op.width_for 32768 = Ir.Op.W32)

let test_cnst_widths () =
  (match Ir.Tree.cnst 1 with
  | Ir.Tree.Cnst (Ir.Op.I, Ir.Op.W8, 1) -> ()
  | _ -> Alcotest.fail "cnst 1 should be 8-bit");
  match Ir.Tree.cnst 70000 with
  | Ir.Tree.Cnst (Ir.Op.I, Ir.Op.W32, 70000) -> ()
  | _ -> Alcotest.fail "cnst 70000 should be 32-bit"

(* ---- printer / parser ---- *)

let test_print_paper_form () =
  (* the exact statement from §3 of the paper *)
  let s =
    Ir.Tree.Sasgn
      ( Ir.Op.I,
        Ir.Tree.Addrl (Ir.Op.W8, 72),
        Ir.Tree.Binop
          ( Ir.Op.I,
            Ir.Op.Sub,
            Ir.Tree.Indir (Ir.Op.I, Ir.Tree.Addrl (Ir.Op.W8, 72)),
            Ir.Tree.Cnst (Ir.Op.I, Ir.Op.W8, 1) ) )
  in
  Alcotest.(check string) "paper rendering"
    "ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))"
    (Ir.Printer.stmt_to_string s)

let test_parse_stmt () =
  let s = Ir.Parse_ir.stmt_of_string "ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))" in
  Alcotest.(check string) "reprint"
    "ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))"
    (Ir.Printer.stmt_to_string s)

let test_parse_branch () =
  let s = Ir.Parse_ir.stmt_of_string "LEI[L0](INDIRI(ADDRFP8[0]),CNSTC[0])" in
  match s with
  | Ir.Tree.Scnd (Ir.Op.Le, Ir.Op.I, _, _, "L0") -> ()
  | _ -> Alcotest.fail "wrong parse"

let test_parse_error () =
  (match Ir.Parse_ir.stmt_of_string "BOGUS[1](X)" with
  | exception Ir.Parse_ir.Parse_error _ -> ()
  | _ -> Alcotest.fail "should not parse");
  match Ir.Parse_ir.stmt_of_string "ASGNI(ADDRLP8[72])" with
  | exception Ir.Parse_ir.Parse_error _ -> ()
  | _ -> Alcotest.fail "missing operand should fail"

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300 arb_stmt (fun s ->
      let printed = Ir.Printer.stmt_to_string s in
      Ir.Tree.equal_stmt s (Ir.Parse_ir.stmt_of_string printed))

let test_program_roundtrip () =
  let src =
    "global g 4\n\
     global tab 16 = 1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16\n\
     function f(a:I, p:P) frame 8 {\n\
    \  ASGNI(ADDRLP8[0], CNSTC[5])\n\
    \  LABELV[L0]\n\
    \  GTI[L0](INDIRI(ADDRLP8[0]),CNSTC[0])\n\
    \  RETI(INDIRI(ADDRLP8[0]))\n\
     }\n"
  in
  let p = Ir.Parse_ir.program_of_string src in
  let p2 = Ir.Parse_ir.program_of_string (Ir.Printer.program_to_string p) in
  Alcotest.(check bool) "roundtrip" true (Ir.Tree.equal_program p p2)

(* ---- patternization ---- *)

let test_patternize_paper_example () =
  let s = Ir.Parse_ir.stmt_of_string "ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))" in
  let sp, lits = Ir.Pattern.of_stmt s in
  Alcotest.(check string) "wildcarded"
    "ASGNI(ADDRLP8[*], SUBI(INDIRI(ADDRLP8[*]),CNSTC[*]))"
    (Ir.Pattern.spat_to_string sp);
  Alcotest.(check int) "three literals" 3 (List.length lits);
  (* literals come back in prefix order: 72, 72, 1 *)
  let values =
    List.map (fun (_, l) -> match l with Ir.Pattern.Lint v -> v | _ -> -1) lits
  in
  Alcotest.(check (list int)) "prefix order" [ 72; 72; 1 ] values

let prop_patternize_roundtrip =
  QCheck.Test.make ~name:"of_stmt/to_stmt roundtrip" ~count:400 arb_stmt
    (fun s ->
      let sp, lits = Ir.Pattern.of_stmt s in
      Ir.Tree.equal_stmt s (Ir.Pattern.to_stmt sp lits))

let prop_lit_slots_agree =
  QCheck.Test.make ~name:"lit_slots matches of_stmt classes" ~count:400
    arb_stmt (fun s ->
      let sp, lits = Ir.Pattern.of_stmt s in
      Ir.Pattern.lit_slots sp = List.map fst lits)

let prop_pattern_encode_roundtrip =
  QCheck.Test.make ~name:"pattern byte encode/decode roundtrip" ~count:400
    arb_stmt (fun s ->
      let sp, _ = Ir.Pattern.of_stmt s in
      let enc = Ir.Pattern.encode sp in
      let pos = ref 0 in
      let sp' = Ir.Pattern.decode enc pos in
      Ir.Pattern.equal sp sp' && !pos = String.length enc)

let test_pattern_bytes_one_per_node () =
  let s = Ir.Parse_ir.stmt_of_string "ASGNI(ADDRLP8[4], ADDI(CNSTC[1],CNSTC[2]))" in
  let sp, _ = Ir.Pattern.of_stmt s in
  (* ASGN, ADDRL, ADD, CNST, CNST = 5 nodes = 5 bytes *)
  Alcotest.(check int) "bytes" 5 (String.length (Ir.Pattern.encode sp))

let test_decode_garbage () =
  let pos = ref 0 in
  match Ir.Pattern.decode "\255\255" pos with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "garbage should not decode"

(* ---- validation ---- *)

let valid_src =
  "function main() frame 8 {\n\
  \  ASGNI(ADDRLP8[0], CNSTC[1])\n\
  \  RETI(INDIRI(ADDRLP8[0]))\n\
   }\n"

let test_validate_ok () =
  let p = Ir.Parse_ir.program_of_string valid_src in
  Alcotest.(check int) "no issues" 0 (List.length (Ir.Validate.check_program p))

let test_validate_undefined_label () =
  let p =
    Ir.Parse_ir.program_of_string
      "function f() frame 0 { JUMPV[nowhere] RETV }\n"
  in
  Alcotest.(check bool) "caught" true (Ir.Validate.check_program p <> [])

let test_validate_duplicate_label () =
  let p =
    Ir.Parse_ir.program_of_string
      "function f() frame 0 { LABELV[a] LABELV[a] RETV }\n"
  in
  Alcotest.(check bool) "caught" true (Ir.Validate.check_program p <> [])

let test_validate_width_violation () =
  (* hand-build a tree whose literal exceeds its width class *)
  let p =
    {
      Ir.Tree.globals = [];
      funcs =
        [
          {
            Ir.Tree.fname = "f";
            formals = [];
            frame_size = 4;
            body =
              [
                Ir.Tree.Sasgn
                  ( Ir.Op.I,
                    Ir.Tree.Addrl (Ir.Op.W8, 0),
                    Ir.Tree.Cnst (Ir.Op.I, Ir.Op.W8, 4000) );
                Ir.Tree.Sret (Ir.Op.V, None);
              ];
          };
        ];
    }
  in
  Alcotest.(check bool) "caught" true (Ir.Validate.check_program p <> [])

let test_validate_frame_bounds () =
  let p =
    Ir.Parse_ir.program_of_string
      "function f() frame 4 { ASGNI(ADDRLP8[100], CNSTC[1]) RETV }\n"
  in
  Alcotest.(check bool) "caught" true (Ir.Validate.check_program p <> [])

let test_validate_unknown_symbol () =
  let p =
    Ir.Parse_ir.program_of_string
      "function f() frame 0 { CALLV(ADDRGP[missing]) RETV }\n"
  in
  Alcotest.(check bool) "caught" true (Ir.Validate.check_program p <> [])

let test_validate_builtins_ok () =
  let p =
    Ir.Parse_ir.program_of_string
      "function f() frame 0 { ARGI(CNSTC[65]) CALLI(ADDRGP[putchar]) RETV }\n"
  in
  Alcotest.(check int) "no issues" 0 (List.length (Ir.Validate.check_program p))

let test_validate_void_return_with_value () =
  let p =
    {
      Ir.Tree.globals = [];
      funcs =
        [
          {
            Ir.Tree.fname = "f";
            formals = [];
            frame_size = 0;
            body = [ Ir.Tree.Sret (Ir.Op.V, Some (Ir.Tree.cnst 1)) ];
          };
        ];
    }
  in
  Alcotest.(check bool) "caught" true (Ir.Validate.check_program p <> [])

(* ---- sizes ---- *)

let test_tree_size () =
  let t = Ir.Parse_ir.tree_of_string "ADDI(INDIRI(ADDRLP8[0]),CNSTC[1])" in
  Alcotest.(check int) "nodes" 4 (Ir.Tree.tree_size t)

let test_program_size () =
  let p = Ir.Parse_ir.program_of_string valid_src in
  Alcotest.(check int) "nodes" 6 (Ir.Tree.program_size p)

let () =
  Alcotest.run "ir"
    [
      ( "widths",
        [
          Alcotest.test_case "width_for" `Quick test_width_for;
          Alcotest.test_case "cnst widths" `Quick test_cnst_widths;
        ] );
      ( "printer_parser",
        [
          Alcotest.test_case "paper form" `Quick test_print_paper_form;
          Alcotest.test_case "parse stmt" `Quick test_parse_stmt;
          Alcotest.test_case "parse branch" `Quick test_parse_branch;
          Alcotest.test_case "parse errors" `Quick test_parse_error;
          Alcotest.test_case "program roundtrip" `Quick test_program_roundtrip;
          qcheck prop_print_parse_roundtrip;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "paper example" `Quick test_patternize_paper_example;
          Alcotest.test_case "one byte per node" `Quick
            test_pattern_bytes_one_per_node;
          Alcotest.test_case "garbage decode" `Quick test_decode_garbage;
          qcheck prop_patternize_roundtrip;
          qcheck prop_lit_slots_agree;
          qcheck prop_pattern_encode_roundtrip;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts valid" `Quick test_validate_ok;
          Alcotest.test_case "undefined label" `Quick test_validate_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_validate_duplicate_label;
          Alcotest.test_case "width violation" `Quick test_validate_width_violation;
          Alcotest.test_case "frame bounds" `Quick test_validate_frame_bounds;
          Alcotest.test_case "unknown symbol" `Quick test_validate_unknown_symbol;
          Alcotest.test_case "builtins allowed" `Quick test_validate_builtins_ok;
          Alcotest.test_case "void return value" `Quick
            test_validate_void_return_with_value;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "tree size" `Quick test_tree_size;
          Alcotest.test_case "program size" `Quick test_program_size;
        ] );
    ]
