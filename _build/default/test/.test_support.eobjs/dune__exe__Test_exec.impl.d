test/test_exec.ml: Alcotest Brisc Cc Corpus Int64 List Native Printf Vm
