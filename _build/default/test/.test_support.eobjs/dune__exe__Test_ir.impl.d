test/test_ir.ml: Alcotest Ir List QCheck QCheck_alcotest String
