test/test_wire.ml: Alcotest Bytes Cc Corpus Ir Lazy List Native Printf String Vm Wire Zip
