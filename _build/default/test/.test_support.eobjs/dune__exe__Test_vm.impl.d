test/test_vm.ml: Alcotest Array Cc Corpus List QCheck QCheck_alcotest Vm
