test/test_zip.ml: Alcotest Array Bytes Char Gen List QCheck QCheck_alcotest String Support Zip
