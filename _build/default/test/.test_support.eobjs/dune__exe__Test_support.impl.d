test/test_support.ml: Alcotest Buffer Int64 List Printf QCheck QCheck_alcotest Support
