test/test_scenario.ml: Alcotest Array Brisc Cc Corpus List Native Scenario Vm
