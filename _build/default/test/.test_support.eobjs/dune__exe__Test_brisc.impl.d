test/test_brisc.ml: Alcotest Array Brisc Buffer Cc Corpus Lazy List Native QCheck QCheck_alcotest Vm
