test/test_cc.ml: Alcotest Cc List Printf Vm
