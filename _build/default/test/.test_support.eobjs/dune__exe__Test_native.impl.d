test/test_native.ml: Alcotest Cc Corpus List Native Printf QCheck QCheck_alcotest String Vm
