test/test_brisc.mli:
