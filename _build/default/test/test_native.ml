(* Tests for the native targets: x86-like encoder, SPARC-like and
   PPC-like size models, the VM->native compiler, and the simulator's
   cycle model. *)

let qcheck = QCheck_alcotest.to_alcotest

let compile src = Vm.Codegen.gen_program (Cc.Lower.compile src)

(* ---- x86-like encoding sizes ---- *)

let test_encoded_sizes () =
  let open Native.Mach in
  Alcotest.(check int) "mov r,r" 2
    (encoded_size (Nmov (Vm.Isa.W, Reg 0, Reg 1)));
  Alcotest.(check int) "mov r,imm8" 3 (encoded_size (Nmov (Vm.Isa.W, Reg 0, Imm 5)));
  Alcotest.(check int) "mov r,imm32" 6
    (encoded_size (Nmov (Vm.Isa.W, Reg 0, Imm 100000)));
  Alcotest.(check int) "mov r,[r+0]" 2
    (encoded_size (Nmov (Vm.Isa.W, Reg 0, Mem (1, 0))));
  Alcotest.(check int) "mov r,[r+disp8]" 3
    (encoded_size (Nmov (Vm.Isa.W, Reg 0, Mem (1, 8))));
  Alcotest.(check int) "mov r,[r+disp32]" 6
    (encoded_size (Nmov (Vm.Isa.W, Reg 0, Mem (1, 4096))));
  Alcotest.(check int) "ret" 1 (encoded_size Nret);
  Alcotest.(check int) "call" 5 (encoded_size (Ncall "f"));
  Alcotest.(check int) "label free" 0 (encoded_size (Nlabel "x"))

let test_image_length_matches_size () =
  (* the emitted byte image must agree byte-for-byte with the size model *)
  List.iter
    (fun (e : Corpus.Programs.entry) ->
      let vp = compile e.Corpus.Programs.source in
      let np = Native.Compile.compile_program vp in
      Alcotest.(check int) (e.Corpus.Programs.name ^ " image length")
        (Native.Mach.program_size np)
        (String.length (Native.Mach.encode_program np)))
    Corpus.Programs.all

let test_sparc_image_length () =
  List.iter
    (fun (e : Corpus.Programs.entry) ->
      let vp = compile e.Corpus.Programs.source in
      Alcotest.(check int) (e.Corpus.Programs.name ^ " sparc length")
        (Native.Sparc.program_size vp)
        (String.length (Native.Sparc.encode_program vp)))
    Corpus.Programs.all

let test_sparc_word_multiple () =
  let vp = compile Corpus.Programs.qsort.Corpus.Programs.source in
  Alcotest.(check int) "multiple of 4" 0 (Native.Sparc.program_size vp mod 4)

(* ---- VM -> native compiler ---- *)

let test_compile_instr_shapes () =
  let open Vm.Isa in
  (* two-address constraint: same dest+src1 needs no extra mov *)
  Alcotest.(check int) "add in place" 1
    (List.length (Native.Compile.compile_instr (Alu (Add, 3, 3, 4))));
  Alcotest.(check int) "add elsewhere" 2
    (List.length (Native.Compile.compile_instr (Alu (Add, 2, 3, 4))));
  (* commutative op with dest=src2 also avoids the mov *)
  Alcotest.(check int) "commutative reversal" 1
    (List.length (Native.Compile.compile_instr (Alu (Add, 4, 3, 4))));
  (* but subtraction cannot commute *)
  Alcotest.(check int) "sub needs mov" 2
    (List.length (Native.Compile.compile_instr (Alu (Sub, 4, 3, 4))));
  (* self-moves vanish *)
  Alcotest.(check int) "mov self" 0
    (List.length (Native.Compile.compile_instr (Mov (5, 5))));
  (* compare-and-branch stays fused *)
  Alcotest.(check int) "fused branch" 1
    (List.length (Native.Compile.compile_instr (Br (Lt, 1, 2, "L"))))

let test_expansion_costs_positive () =
  let instrs =
    [ Vm.Isa.Ld (Vm.Isa.W, 0, 4, Vm.Isa.sp); Vm.Isa.Enter 24;
      Vm.Isa.Call "f"; Vm.Isa.Bri (Vm.Isa.Le, 4, 0, "L"); Vm.Isa.Rjr ]
  in
  List.iter
    (fun i ->
      Alcotest.(check bool) "x86 positive" true
        (Native.Compile.expansion_bytes_x86 i > 0);
      Alcotest.(check bool) "ppc positive and word-aligned" true
        (let p = Native.Compile.expansion_bytes_ppc i in
         p > 0 && p mod 4 = 0))
    instrs

let test_paper_w_example_shape () =
  (* the paper's W for [enter sp,*,*] averaged Pentium (17B) and PowerPC
     (28B) templates; ours are far smaller because enter is one stack
     adjust here, but PPC must be the wider of the two *)
  let i = Vm.Isa.Enter 24 in
  Alcotest.(check bool) "ppc >= x86" true
    (Native.Compile.expansion_bytes_ppc i >= Native.Compile.expansion_bytes_x86 i)

(* ---- simulator ---- *)

let test_cycle_model_ordering () =
  let open Native.Mach in
  Alcotest.(check bool) "mem slower than reg" true
    (cycles (Nmov (Vm.Isa.W, Reg 0, Mem (1, 4))) > cycles (Nmov (Vm.Isa.W, Reg 0, Reg 1)));
  Alcotest.(check bool) "div slowest alu" true
    (cycles (Nalu (Vm.Isa.Div, 0, Reg 1)) > cycles (Nalu (Vm.Isa.Mul, 0, Reg 1)));
  Alcotest.(check bool) "mul slower than add" true
    (cycles (Nalu (Vm.Isa.Mul, 0, Reg 1)) > cycles (Nalu (Vm.Isa.Add, 0, Reg 1)))

let test_sim_traps () =
  let vp = compile "int main() { int z = 0; return 3 / z; }" in
  let np = Native.Compile.compile_program vp in
  (match Native.Sim.run np with
  | exception Native.Sim.Runtime_error _ -> ()
  | _ -> Alcotest.fail "division by zero must trap");
  let vp2 = compile "int main() { while (1) { } return 0; }" in
  let np2 = Native.Compile.compile_program vp2 in
  match Native.Sim.run ~fuel:1000 np2 with
  | exception Native.Sim.Runtime_error _ -> ()
  | _ -> Alcotest.fail "fuel must bound execution"

let test_sim_cycle_counts_grow_with_work () =
  let run n =
    let vp =
      compile
        (Printf.sprintf
           "int main() { int s = 0; for (int i = 0; i < %d; i++) s += i; return s & 127; }"
           n)
    in
    (Native.Sim.run (Native.Compile.compile_program vp)).Native.Sim.cycles
  in
  Alcotest.(check bool) "10x work, more cycles" true (run 1000 > run 100)

let test_on_instr_hook_counts () =
  let vp = compile "int main() { return 1 + 2; }" in
  let np = Native.Compile.compile_program vp in
  let count = ref 0 in
  let r = Native.Sim.run ~on_instr:(fun _ _ -> incr count) np in
  Alcotest.(check int) "hook fires per retired instruction"
    r.Native.Sim.instrs !count

(* ---- properties ---- *)

let prop_compile_never_empty_for_work =
  QCheck.Test.make ~name:"every non-label VM instruction expands" ~count:200
    QCheck.(int_range 0 58)
    (fun code ->
      let t = Vm.Encode.template_of_code code in
      match t with
      | Vm.Isa.Label _ -> true
      | Vm.Isa.Mov (a, b) when a = b -> true
      | _ -> Native.Compile.compile_instr t <> [])

let prop_ppc_word_aligned =
  QCheck.Test.make ~name:"ppc sizes are word multiples" ~count:200
    QCheck.(int_range 0 58)
    (fun code ->
      let t = Vm.Encode.template_of_code code in
      Native.Compile.expansion_bytes_ppc t mod 4 = 0)

let () =
  Alcotest.run "native"
    [
      ( "encoding",
        [
          Alcotest.test_case "instruction sizes" `Quick test_encoded_sizes;
          Alcotest.test_case "image length = size model" `Quick
            test_image_length_matches_size;
          Alcotest.test_case "sparc image length" `Quick test_sparc_image_length;
          Alcotest.test_case "sparc word multiple" `Quick test_sparc_word_multiple;
        ] );
      ( "compile",
        [
          Alcotest.test_case "two-address shapes" `Quick test_compile_instr_shapes;
          Alcotest.test_case "expansion costs" `Quick test_expansion_costs_positive;
          Alcotest.test_case "W model shape" `Quick test_paper_w_example_shape;
          qcheck prop_compile_never_empty_for_work;
          qcheck prop_ppc_word_aligned;
        ] );
      ( "sim",
        [
          Alcotest.test_case "cycle ordering" `Quick test_cycle_model_ordering;
          Alcotest.test_case "traps" `Quick test_sim_traps;
          Alcotest.test_case "cycles grow with work" `Quick
            test_sim_cycle_counts_grow_with_work;
          Alcotest.test_case "fetch hook" `Quick test_on_instr_hook_counts;
        ] );
    ]
