(* Perf gate: compare a fresh `--codecs-json` run against the committed
   BENCH_compressor.json and fail when any stage regresses — and hold
   the ratio/throughput frontier for the bit-optimal codecs.

   Usage:  perf_gate BASELINE.json FRESH.json
           perf_gate --server BENCH_server.json

   The --server mode gates the network daemon's load report
   (`mccload --json`) on absolute floors rather than a baseline diff:
   wall-clock latency on shared runners is too noisy to diff, but
   "sustains at least 1000 QPS with zero corruption and zero errors"
   is a property of the implementation, not the runner.

   A stage regresses when its fresh wall time exceeds the baseline by
   more than 25% AND by more than a 2 ms absolute floor — the floor
   keeps micro-stages (tenths of a millisecond, dominated by scheduler
   noise) from tripping the gate; the ratio protects the stages the
   kernels of DESIGN.md §10 are accountable for. Stages present only on
   one side (renames, new codecs) warn but do not fail.

   Sizes are deterministic, so they get a harder rule than walls: a
   `-opt` codec exists only to buy ratio with encode time, and any
   byte of growth on any point means the optimal parse or its cost
   model got worse — fail on a single byte, no tolerance. Other codecs'
   sizes are reported but not gated (their parses are pinned by the
   golden-digest tests instead).

   The input is this repo's own fixed-format bench output, so this is a
   purpose-built scanner — the container has no JSON library, and the
   gate must not grow a dependency for a format we print ourselves. *)

let tolerance = 1.25
let floor_s = 0.002

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* One row per stage object: (point label, codec name, direction,
   stage name, occurrence index within that direction) -> wall_s.
   The scanner walks the document's quoted keys in order, tracking the
   most recent "label", "name" and "*_stages" keys — exactly how the
   printer in bench/main.ml nests them. *)
type row = {
  point : string;
  codec : string;
  dir : string;
  stage : string;
  occ : int;
  wall : float;
}

(* artifact size per (point label, codec name): the "bytes" key of each
   codec row (the nested stage objects use "bytes_in"/"bytes_out", so
   the bare key is unambiguous) *)
type size_row = { spoint : string; scodec : string; bytes : float }

let parse (s : string) : row list * size_row list =
  let n = String.length s in
  let i = ref 0 in
  let rows = ref [] in
  let sizes = ref [] in
  let point = ref "" and codec = ref "" and dir = ref "" in
  let pending_stage = ref None in
  let occs : (string * string * string * string, int) Hashtbl.t =
    Hashtbl.create 64
  in
  let read_quoted () =
    (* [!i] is at the opening quote *)
    incr i;
    let b = Buffer.create 16 in
    while !i < n && s.[!i] <> '"' do
      if s.[!i] = '\\' && !i + 1 < n then begin
        Buffer.add_char b s.[!i + 1];
        i := !i + 2
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    incr i;
    Buffer.contents b
  in
  let skip_ws () =
    while !i < n && (s.[!i] = ' ' || s.[!i] = '\n' || s.[!i] = '\t') do
      incr i
    done
  in
  let is_num c = (c >= '0' && c <= '9') || c = '-' || c = '.' || c = 'e' in
  while !i < n do
    if s.[!i] = '"' then begin
      let key = read_quoted () in
      skip_ws ();
      if !i < n && s.[!i] = ':' then begin
        incr i;
        skip_ws ();
        let sval =
          if !i < n && s.[!i] = '"' then Some (read_quoted ()) else None
        in
        let fval =
          match sval with
          | Some _ -> None
          | None ->
            let j = ref !i in
            while !j < n && is_num s.[!j] do incr j done;
            if !j > !i then begin
              let v = float_of_string (String.sub s !i (!j - !i)) in
              i := !j;
              Some v
            end
            else None
        in
        match (key, sval, fval) with
        | "label", Some v, _ -> point := v
        | "name", Some v, _ -> codec := v
        | "bytes", _, Some b ->
          sizes := { spoint = !point; scodec = !codec; bytes = b } :: !sizes
        | ("encode_stages" | "decode_stages"), _, _ -> dir := key
        | "stage", Some v, _ -> pending_stage := Some v
        | "wall_s", _, Some w -> (
          match !pending_stage with
          | Some st ->
            pending_stage := None;
            let k = (!point, !codec, !dir, st) in
            let occ = try Hashtbl.find occs k with Not_found -> 0 in
            Hashtbl.replace occs k (occ + 1);
            rows :=
              { point = !point; codec = !codec; dir = !dir; stage = st;
                occ; wall = w }
              :: !rows
          | None -> ())
        | _ -> ()
      end
    end
    else incr i
  done;
  (List.rev !rows, List.rev !sizes)

(* ---- --server mode: absolute floors over mccload's JSON report ---- *)

let min_qps = 1000.0

(* Last numeric value of a key: the summary counters come after the
   echoed "config" object (which reuses "qps" for the requested rate),
   so the last occurrence is the measured one. *)
let scan_number (s : string) key =
  let pat = "\"" ^ key ^ "\":" in
  let n = String.length s and pn = String.length pat in
  let rec find i best =
    if i + pn > n then best
    else if String.sub s i pn = pat then begin
      let j = ref (i + pn) in
      while !j < n && s.[!j] = ' ' do incr j done;
      let k = ref !j in
      let is_num c = (c >= '0' && c <= '9') || c = '-' || c = '.' || c = 'e' in
      while !k < n && is_num s.[!k] do incr k done;
      if !k > !j then
        find !k (Some (float_of_string (String.sub s !j (!k - !j))))
      else find (i + 1) best
    end
    else find (i + 1) best
  in
  find 0 None

let server_gate path =
  let s = read_file path in
  let get key =
    match scan_number s key with
    | Some v -> v
    | None ->
      Printf.eprintf "perf-gate: no \"%s\" in %s\n" key path;
      exit 2
  in
  let qps = get "qps" in
  let corrupt = get "corrupt" in
  let errors = get "errors" in
  let shed = get "shed" in
  let failures = ref 0 in
  let check cond msg =
    Printf.printf "  [%s] %s\n" (if cond then "ok" else "FAIL") msg;
    if not cond then incr failures
  in
  Printf.printf "server gate on %s:\n" path;
  check (qps >= min_qps)
    (Printf.sprintf "sustained %.0f QPS >= %.0f" qps min_qps);
  check (corrupt = 0.0)
    (Printf.sprintf "%.0f corrupt responses (every response decode-verified)"
       corrupt);
  check (errors = 0.0) (Printf.sprintf "%.0f error responses" errors);
  (* sheds are legal under overload but the bench run is sized within
     capacity, so report them without failing *)
  Printf.printf "  [--] %.0f connections shed\n" shed;
  if !failures > 0 then begin
    Printf.printf "\nperf-gate: FAIL — %d server floor(s) missed\n" !failures;
    exit 1
  end
  else print_endline "\nperf-gate: OK — server floors hold"

(* ---- --ab mode: the tuned side may not regress the live side ---- *)

(* mccsim ab's report is deterministic (modelled latencies), so the
   p99 tolerance is generosity toward float printing, not noise: the
   tuned policy may cost up to 10% + 0.5 ms of p99 and 1% of bytes
   before the gate trips. Byte parity is the expected result — the
   table was tuned against the same objective live scoring minimizes. *)
let ab_bytes_tolerance = 1.01
let ab_p99_tolerance = 1.10
let ab_p99_floor_ms = 0.5

let ab_gate path =
  let s = read_file path in
  let rec has i =
    if i + 8 > String.length s then false
    else if String.sub s i 8 = "mcc-ab 1" then true
    else has (i + 1)
  in
  if not (has 0) then begin
    Printf.eprintf "perf-gate: %s is not an mcc-ab 1 report\n" path;
    exit 2
  end;
  let get key =
    match scan_number s key with
    | Some v -> v
    | None ->
      Printf.eprintf "perf-gate: no \"%s\" in %s\n" key path;
      exit 2
  in
  let a_bytes = get "a_bytes" in
  let b_bytes = get "b_bytes" in
  let a_p99 = get "a_p99_ms" in
  let b_p99 = get "b_p99_ms" in
  let failures = ref 0 in
  let check cond msg =
    Printf.printf "  [%s] %s\n" (if cond then "ok" else "FAIL") msg;
    if not cond then incr failures
  in
  Printf.printf "A/B gate on %s (A = tuned policy, B = live scoring):\n" path;
  check
    (a_bytes <= b_bytes *. ab_bytes_tolerance)
    (Printf.sprintf "bytes on wire %.0f <= %.0f x %.2f" a_bytes b_bytes
       ab_bytes_tolerance);
  check
    (a_p99 <= (b_p99 *. ab_p99_tolerance) +. ab_p99_floor_ms)
    (Printf.sprintf "p99 %.2f ms <= %.2f x %.2f + %.1f" a_p99 b_p99
       ab_p99_tolerance ab_p99_floor_ms);
  if !failures > 0 then begin
    Printf.printf "\nperf-gate: FAIL — tuned policy regressed the A/B gate\n";
    exit 1
  end
  else print_endline "\nperf-gate: OK — tuned policy holds parity with live scoring"

(* ---- --storm mode: the update channel must actually save bytes ---- *)

(* mccsim storm replays the committed update-storm trace with the
   update channel on and off; both replays are deterministic, so the
   savings ratio is a property of the codecs and the scenario, not the
   runner. The gate holds the tentpole's claim: delta delivery costs at
   most 40% of full redelivery on the update ops, every serve
   decode-verified client-side. *)
let storm_max_ratio = 0.40

let storm_gate path =
  let s = read_file path in
  let rec has i =
    if i + 11 > String.length s then false
    else if String.sub s i 11 = "mcc-storm 1" then true
    else has (i + 1)
  in
  if not (has 0) then begin
    Printf.eprintf "perf-gate: %s is not an mcc-storm 1 report\n" path;
    exit 2
  end;
  let get key =
    match scan_number s key with
    | Some v -> v
    | None ->
      Printf.eprintf "perf-gate: no \"%s\" in %s\n" key path;
      exit 2
  in
  let update_bytes = get "update_bytes" in
  let full_bytes = get "full_update_bytes" in
  let corrupt = get "storm_corrupt" in
  let ops = get "update_ops" in
  let failures = ref 0 in
  let check cond msg =
    Printf.printf "  [%s] %s\n" (if cond then "ok" else "FAIL") msg;
    if not cond then incr failures
  in
  Printf.printf "update-storm gate on %s:\n" path;
  check (ops > 0.0) (Printf.sprintf "%.0f update ops replayed" ops);
  check
    (update_bytes <= full_bytes *. storm_max_ratio)
    (Printf.sprintf "update bytes %.0f <= %.0f x %.2f (%.1f%% of full)"
       update_bytes full_bytes storm_max_ratio
       (if full_bytes > 0.0 then update_bytes /. full_bytes *. 100.0 else 0.0));
  check (corrupt = 0.0)
    (Printf.sprintf
       "%.0f corrupt update serves (every serve decode-verified against \
        its context)"
       corrupt);
  if !failures > 0 then begin
    Printf.printf "\nperf-gate: FAIL — the update channel missed its floor\n";
    exit 1
  end
  else
    print_endline
      "\nperf-gate: OK — delta delivery holds its floor over full redelivery"

(* ---- --paging mode: demand-paged execution + hot-layout gate over
   BENCH_paging.json ---- *)

(* Every numeric value of a key, in document order. The paging report
   repeats the same keys once per corpus point (and per budget row), so
   the gates below pair up src/hot arrays positionally. *)
let scan_all (s : string) key =
  let pat = "\"" ^ key ^ "\":" in
  let n = String.length s and pn = String.length pat in
  let acc = ref [] in
  let i = ref 0 in
  while !i + pn <= n do
    if String.sub s !i pn = pat then begin
      let j = ref (!i + pn) in
      while !j < n && s.[!j] = ' ' do incr j done;
      let k = ref !j in
      let is_num c = (c >= '0' && c <= '9') || c = '-' || c = '.' || c = 'e' in
      while !k < n && is_num s.[!k] do incr k done;
      if !k > !j then begin
        acc := float_of_string (String.sub s !j (!k - !j)) :: !acc;
        i := !k
      end
      else incr i
    end
    else incr i
  done;
  List.rev !acc

(* Ceilings pinned from the committed BENCH_paging.json (gen-80/120/300,
   repeat 8, budgets 50/25/12%) with headroom for corpus churn: the
   worst measured hot overhead at the 25% budget is 4.08x, the worst
   per-row hot fault count 337. Ratio tolerances: the chunked container
   is order-invariant by construction so it gets exact equality;
   BRISC's global dictionary training and the flat wire's match finder
   are order-sensitive, so reordering may cost a hair — bounded at
   +0.2% / +0.3% (measured worst: +0.093% / +0.054%). *)
let paging_max_overhead_25 = 5.5
let paging_max_faults_row = 450.0
let paging_brisc_ratio = 1.002
let paging_wire_ratio = 1.003

let paging_gate path =
  let s = read_file path in
  let get key =
    match scan_all s key with
    | [] ->
      Printf.eprintf "perf-gate: no \"%s\" in %s\n" key path;
      exit 2
    | vs -> vs
  in
  let pair key_src key_hot =
    let a = get key_src and b = get key_hot in
    if List.length a <> List.length b then begin
      Printf.eprintf "perf-gate: %s/%s count mismatch in %s\n" key_src
        key_hot path;
      exit 2
    end;
    List.combine a b
  in
  let failures = ref 0 in
  let check cond msg =
    Printf.printf "  [%s] %s\n" (if cond then "ok" else "FAIL") msg;
    if not cond then incr failures
  in
  Printf.printf "paging gate on %s:\n" path;
  List.iteri
    (fun i (src, hot) ->
      check (hot = src)
        (Printf.sprintf
           "point %d: chunked bytes invariant under reorder (%.0f = %.0f)" i
           hot src))
    (pair "chunked_bytes_src" "chunked_bytes_hot");
  List.iteri
    (fun i (src, hot) ->
      check
        (hot <= src *. paging_brisc_ratio)
        (Printf.sprintf "point %d: brisc bytes %.0f <= %.0f x %.3f" i hot src
           paging_brisc_ratio))
    (pair "brisc_bytes_src" "brisc_bytes_hot");
  List.iteri
    (fun i (src, hot) ->
      check
        (hot <= src *. paging_wire_ratio)
        (Printf.sprintf "point %d: wire bytes %.0f <= %.0f x %.3f" i hot src
           paging_wire_ratio))
    (pair "wire_bytes_src" "wire_bytes_hot");
  List.iteri
    (fun i (src, hot) ->
      check (hot < src)
        (Printf.sprintf "point %d: icache misses %.0f < %.0f" i hot src))
    (pair "icache_misses_src" "icache_misses_hot");
  (* per budget row: the hot layout may never fault more than source
     order, and stays under the absolute ceiling *)
  List.iteri
    (fun i (src, hot) ->
      check (hot <= src)
        (Printf.sprintf "row %d: faults hot %.0f <= src %.0f" i hot src);
      check
        (hot <= paging_max_faults_row)
        (Printf.sprintf "row %d: faults hot %.0f <= ceiling %.0f" i hot
           paging_max_faults_row))
    (pair "faults_src" "faults_hot");
  List.iteri
    (fun i (src, hot) ->
      check (hot <= src)
        (Printf.sprintf "row %d: overhead hot %.4f <= src %.4f" i hot src))
    (pair "overhead_src" "overhead_hot");
  (* per point: summed across budgets the reduction must be strict —
     this is the acceptance criterion that the layout actually works *)
  List.iteri
    (fun i (src, hot) ->
      check (hot < src)
        (Printf.sprintf
           "point %d: total faults strictly reduced (hot %.0f < src %.0f)" i
           hot src))
    (pair "faults_total_src" "faults_total_hot");
  (* the headline budget: at 25% residency the hot layout holds its
     stall overhead under the pinned ceiling. Budget rows come in
     50/25/12 order, so the 25% rows are every 3n+1'th occurrence. *)
  List.iteri
    (fun i hot ->
      if i mod 3 = 1 then
        check
          (hot <= paging_max_overhead_25)
          (Printf.sprintf "point %d: overhead at 25%% budget %.4f <= %.2f"
             (i / 3) hot paging_max_overhead_25))
    (get "overhead_hot");
  if !failures > 0 then begin
    Printf.printf "\nperf-gate: FAIL — %d paging floor(s) missed\n" !failures;
    exit 1
  end
  else
    print_endline
      "\nperf-gate: OK — paged execution bounded, hot layout pays for itself"

let () =
  if Array.length Sys.argv = 3 && Sys.argv.(1) = "--server" then begin
    server_gate Sys.argv.(2);
    exit 0
  end;
  if Array.length Sys.argv = 3 && Sys.argv.(1) = "--ab" then begin
    ab_gate Sys.argv.(2);
    exit 0
  end;
  if Array.length Sys.argv = 3 && Sys.argv.(1) = "--storm" then begin
    storm_gate Sys.argv.(2);
    exit 0
  end;
  if Array.length Sys.argv = 3 && Sys.argv.(1) = "--paging" then begin
    paging_gate Sys.argv.(2);
    exit 0
  end;
  if Array.length Sys.argv <> 3 then begin
    prerr_endline
      "usage: perf_gate BASELINE.json FRESH.json | perf_gate --server \
       BENCH_server.json | perf_gate --ab BENCH_ab.json | perf_gate \
       --storm BENCH_storm.json | perf_gate --paging BENCH_paging.json";
    exit 2
  end;
  let base, base_sizes = parse (read_file Sys.argv.(1)) in
  let fresh, fresh_sizes = parse (read_file Sys.argv.(2)) in
  if base = [] then begin
    Printf.eprintf "perf-gate: no stages in baseline %s\n" Sys.argv.(1);
    exit 2
  end;
  let find rs (r : row) =
    List.find_opt
      (fun c ->
        c.point = r.point && c.codec = r.codec && c.dir = r.dir
        && c.stage = r.stage && c.occ = r.occ)
      rs
  in
  let regressions = ref 0 in
  Printf.printf "%-14s %-14s %-7s %-14s %10s %10s %8s\n" "point" "codec"
    "dir" "stage" "base_ms" "fresh_ms" "ratio";
  List.iter
    (fun (b : row) ->
      let dir = if b.dir = "encode_stages" then "enc" else "dec" in
      match find fresh b with
      | None ->
        Printf.printf "%-14s %-14s %-7s %-14s %10.3f %10s %8s\n" b.point
          b.codec dir b.stage (b.wall *. 1e3) "-" "missing"
      | Some f ->
        let ratio = if b.wall > 0.0 then f.wall /. b.wall else 1.0 in
        let bad =
          f.wall > b.wall *. tolerance && f.wall > b.wall +. floor_s
        in
        if bad then incr regressions;
        Printf.printf "%-14s %-14s %-7s %-14s %10.3f %10.3f %7.2fx%s\n"
          b.point b.codec dir b.stage (b.wall *. 1e3) (f.wall *. 1e3) ratio
          (if bad then "  REGRESSION" else ""))
    base;
  List.iter
    (fun (f : row) ->
      if find base f = None then
        Printf.printf "%-14s %-14s %-7s %-14s %10s %10.3f %8s\n" f.point
          f.codec
          (if f.dir = "encode_stages" then "enc" else "dec")
          f.stage "-" (f.wall *. 1e3) "new")
    fresh;
  (* the ratio side of the frontier: -opt codecs may never grow *)
  let is_opt name =
    let n = String.length name in
    n >= 4 && String.sub name (n - 4) 4 = "-opt"
  in
  let ratio_regressions = ref 0 in
  Printf.printf "\n%-14s %-14s %10s %10s\n" "point" "codec" "base_B" "fresh_B";
  List.iter
    (fun (b : size_row) ->
      match
        List.find_opt
          (fun f -> f.spoint = b.spoint && f.scodec = b.scodec)
          fresh_sizes
      with
      | None ->
        Printf.printf "%-14s %-14s %10.0f %10s\n" b.spoint b.scodec b.bytes
          "missing"
      | Some f ->
        let gated = is_opt b.scodec in
        let bad = gated && f.bytes > b.bytes in
        if bad then incr ratio_regressions;
        Printf.printf "%-14s %-14s %10.0f %10.0f%s\n" b.spoint b.scodec
          b.bytes f.bytes
          (if bad then "  RATIO REGRESSION"
           else if gated then "  (gated)"
           else ""))
    base_sizes;
  if !regressions > 0 || !ratio_regressions > 0 then begin
    if !regressions > 0 then
      Printf.printf
        "\nperf-gate: FAIL — %d stage(s) regressed more than %.0f%% (and %g ms)\n"
        !regressions
        ((tolerance -. 1.0) *. 100.0)
        (floor_s *. 1e3);
    if !ratio_regressions > 0 then
      Printf.printf
        "\nperf-gate: FAIL — %d -opt codec size(s) grew (ratio floor is \
         zero-tolerance)\n"
        !ratio_regressions;
    exit 1
  end
  else
    print_endline
      "\nperf-gate: OK — no stage regressed beyond tolerance, -opt ratios held"
