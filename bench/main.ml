(* Benchmark harness: regenerates every table in the paper's evaluation
   plus the ablations DESIGN.md calls out. Run with

     dune exec bench/main.exe              (full corpus; several minutes)
     dune exec bench/main.exe -- --quick   (shrinks the gcc-scale input)
     dune exec bench/main.exe -- --no-bechamel

   Absolute byte counts differ from the paper (our corpus is synthetic
   and our native targets are simulated; see DESIGN.md "Substitutions");
   the *shape* of each table is what reproduces. EXPERIMENTS.md records
   paper-vs-measured for every row. *)

let quick = Array.exists (fun a -> a = "--quick") Sys.argv
let no_bechamel = Array.exists (fun a -> a = "--no-bechamel") Sys.argv

(* --json replaces the human tables with a machine-readable summary of
   sizes and rates, so successive PRs can diff BENCH_*.json files *)
let json_mode = Array.exists (fun a -> a = "--json") Sys.argv

(* --compressor-json times Dict.build on the gcc-like point in every
   mode (full-scan, incremental, parallel) and prints the telemetry as
   JSON — the BENCH_compressor.json the Makefile's bench-quick target
   tracks across PRs *)
let compressor_json_mode = Array.exists (fun a -> a = "--compressor-json") Sys.argv

(* --codecs-json runs every registered codec over two corpus points and
   prints the per-stage size/time matrix (encode and decode) as JSON —
   the Makefile's bench-codecs target tracks it across PRs *)
let codecs_json_mode = Array.exists (fun a -> a = "--codecs-json") Sys.argv

(* --paging-json runs the demand-paged execution sweep (source vs
   profile-guided hot layout across resident budgets) and prints the
   fault/stall/ratio matrix as JSON — the Makefile's paging-bench
   target tracks it as BENCH_paging.json and perf_gate --paging holds
   its ceilings. Everything in it is modelled cycles and byte counts:
   deterministic, so no noise opt-out. *)
let paging_json_mode = Array.exists (fun a -> a = "--paging-json") Sys.argv

(* --domains N sizes the parallel mode's pool (default 4) *)
let domains_flag =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--domains" then Some (int_of_string Sys.argv.(i + 1))
    else find (i + 1)
  in
  find 1

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ---- corpus: the paper's wc / lcc / gcc / Word97 stand-ins ---- *)

type point = {
  label : string;
  entry : Corpus.Programs.entry;
  ir : Ir.Tree.program;
  vp : Vm.Isa.vprogram;
  np : Native.Mach.nprogram;
  sparc_img : string;
  x86_img : string;
}

let make_point label (entry : Corpus.Programs.entry) =
  let ir = Cc.Lower.compile entry.Corpus.Programs.source in
  let vp = Vm.Codegen.gen_program ir in
  let np = Native.Compile.compile_program vp in
  {
    label;
    entry;
    ir;
    vp;
    np;
    sparc_img = Native.Sparc.encode_program vp;
    x86_img = Native.Mach.encode_program np;
  }

let points =
  lazy
    (let gcc_profile =
       if quick then { Corpus.Gen.large with Corpus.Gen.functions = 250 }
       else Corpus.Gen.large
     in
     [
       make_point "wc (smallest)" Corpus.Programs.wc;
       make_point "lcc-like" (Corpus.Gen.generate Corpus.Gen.medium);
       make_point "gcc-like" (Corpus.Gen.generate gcc_profile);
     ])

let word97_point =
  lazy (make_point "word97-like (16-bit)" (Corpus.Gen.generate Corpus.Gen.bigapp16))

(* cached BRISC compressions *)
let brisc_cache : (string, Brisc.Emit.image * Brisc.report) Hashtbl.t =
  Hashtbl.create 8

let brisc_of p =
  match Hashtbl.find_opt brisc_cache p.label with
  | Some r -> r
  | None ->
    let r = Brisc.measure p.vp in
    Hashtbl.add brisc_cache p.label r;
    r

(* ---- Table 1: wire format vs conventional code (§3) ---- *)

let table1 () =
  hr "Table 1 — wire code vs conventional code (paper §3)";
  Printf.printf "%-22s %12s %12s %12s %8s %8s\n" "program" "SPARC-like"
    "gzipped" "wire" "factor" "vs gzip";
  List.iter
    (fun p ->
      let sparc = String.length p.sparc_img in
      let gz = String.length (Zip.Deflate.compress p.sparc_img) in
      let wire = String.length (Wire.compress p.ir) in
      Printf.printf "%-22s %12d %12d %12d %7.2fx %7.2fx\n" p.label sparc gz
        wire
        (float_of_int sparc /. float_of_int wire)
        (float_of_int gz /. float_of_int wire))
    (Lazy.force points);
  print_endline
    "paper: factors up to 4.9x; wire beats gzip except on the smallest input"

(* ---- Table 2: BRISC results (§4.5) ---- *)

(* The paper's runtime columns are measured on a 120 MHz Pentium. Our
   runtimes come from the native simulator's cycle model; the JIT cost
   in the "JIT+run" column uses the paper-calibrated 48 cycles per
   produced native byte (2.5 MB/s at 120 MHz); the in-place
   interpretation model charges each BRISC dispatch 24 cycles of decode
   plus 6 cycles per expanded VM instruction on top of the native work.
   Host-measured JIT MB/s is real wall-clock. *)

let jit_cycles_per_byte = 48
let dispatch_decode_cycles = 24
let per_step_overhead_cycles = 6

(* The paper's benchmarks run for seconds of CPU time, so JIT cost
   amortizes over a long run; our corpus drivers finish in milliseconds.
   The JIT+run column therefore models a session of at least one nominal
   CPU-second at the paper's 120 MHz (or the measured run, if longer). *)
let nominal_session_cycles = 120_000_000

let table2 () =
  hr "Table 2 — BRISC executable size and speed (paper §4.5, K=20)";
  Printf.printf "%-22s %10s %10s %10s %12s %10s %10s\n" "program"
    "BRISC/nat" "gzip/nat" "code/nat" "JIT MB/s" "JIT+run" "interp";
  let rows = Lazy.force points @ [ Lazy.force word97_point ] in
  List.iter
    (fun p ->
      let img, rep = brisc_of p in
      let native = Native.Mach.program_size p.np in
      let gz = String.length (Zip.Deflate.compress p.x86_img) in
      (* measured JIT rate *)
      let (jit_np, produced), jit_s =
        time (fun () -> Brisc.Jit.compile_with_stats img)
      in
      let mbps = float_of_int produced /. jit_s /. 1048576.0 in
      (* modelled runtimes *)
      let input = p.entry.Corpus.Programs.input in
      let sim = Native.Sim.run ~input jit_np in
      let br = Brisc.Interp.run ~input img in
      let native_cycles = max 1 sim.Native.Sim.cycles in
      let session = max native_cycles nominal_session_cycles in
      let jit_run =
        float_of_int ((jit_cycles_per_byte * produced) + session)
        /. float_of_int session
      in
      let interp =
        float_of_int
          (native_cycles
          + (dispatch_decode_cycles * br.Brisc.Interp.dispatches)
          + (per_step_overhead_cycles * br.Brisc.Interp.vm_steps))
        /. float_of_int native_cycles
      in
      Printf.printf "%-22s %10.2f %10.2f %10.2f %12.2f %9.2fx %9.2fx\n"
        p.label
        (float_of_int rep.Brisc.brisc_total /. float_of_int native)
        (float_of_int gz /. float_of_int native)
        (float_of_int rep.Brisc.brisc_code /. float_of_int native)
        mbps jit_run interp)
    rows;
  print_endline
    "paper: BRISC ~ gzip size; JIT >= 2.5 MB/s; JIT+run ~1.08x; interp ~12x";
  print_endline
    "(JIT+run and interp use the cycle model documented in EXPERIMENTS.md;";
  print_endline
    " the 16-bit-heavy word97-like row compresses worse, as the paper notes)"

(* ---- Table 3: the salt/pepper worked example (§4.4) ---- *)

let table3 () =
  hr "Table 3 — salt/pepper example with a trained dictionary (paper §4.4)";
  let salt_src =
    "void pepper(int a, int b) { }\n\
     int salt(int j, int i) {\n\
    \  if (j > 0) {\n\
    \    pepper(i, j);\n\
    \    j--;\n\
    \  }\n\
    \  return j;\n\
     }\n"
  in
  let ir = Cc.Lower.compile salt_src in
  let vp = Vm.Codegen.gen_program ir in
  let salt_f = List.find (fun f -> f.Vm.Isa.name = "salt") vp.Vm.Isa.funcs in
  Printf.printf "OmniVM code for salt:\n%s\n\n" (Vm.Isa.func_to_string salt_f);
  let original = Vm.Encode.func_size salt_f in
  let gcc_like = List.nth (Lazy.force points) 2 in
  let trained, _ = brisc_of gcc_like in
  let img = Brisc.compress_with trained vp in
  let salt_idx =
    let rec find i = function
      | [] -> failwith "salt missing"
      | (f : Brisc.Emit.ifunc) :: _ when f.Brisc.Emit.if_name = "salt" -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 (Array.to_list img.Brisc.Emit.ifuncs)
  in
  let compressed =
    String.length img.Brisc.Emit.ifuncs.(salt_idx).Brisc.Emit.code
  in
  Printf.printf
    "salt: %d OmniVM bytes -> %d BRISC bytes (%.2fx) using the %s dictionary\n"
    original compressed
    (float_of_int original /. float_of_int compressed)
    gcc_like.label;
  Printf.printf
    "paper: 60 bytes -> 17 bytes (3.5x) with the gcc-2.6.3 dictionary\n"

(* ---- Table 4: reducing RISC abstract machines (§5) ---- *)

let table4 () =
  hr "Table 4 — de-tuned abstract machines (paper §5)";
  Printf.printf "%-32s %14s %14s %8s\n" "abstract machine variant" "VM bytes"
    "BRISC bytes" "ratio";
  let p = List.nth (Lazy.force points) 1 (* lcc-like, as in the paper *) in
  let native = Native.Mach.program_size p.np in
  List.iter
    (fun feats ->
      let vp = Vm.Codegen.gen_program ~features:feats p.ir in
      let _, rep = Brisc.measure vp in
      Printf.printf "%-32s %14d %14d %8.2f\n"
        (Vm.Isa.feature_set_name feats)
        rep.Brisc.original_bytes rep.Brisc.brisc_total
        (float_of_int rep.Brisc.brisc_total /. float_of_int native))
    [ Vm.Isa.full_risc; Vm.Isa.minus_immediates; Vm.Isa.minus_reg_disp;
      Vm.Isa.minimal ];
  print_endline
    "paper (compressed/native): RISC 0.54, -imm 0.56, -regdisp 0.57, -both 0.59";
  print_endline
    "(ratio uses the full-RISC native size as the fixed denominator, as in §5)"

(* ---- dictionary statistics (§4.3 prose) ---- *)

let dict_stats () =
  hr "Dictionary statistics (paper §4.3 prose)";
  Printf.printf "%-22s %8s %8s %12s %8s %10s\n" "program" "entries" "base"
    "candidates" "passes" "max succ";
  List.iter
    (fun p ->
      let _, rep = brisc_of p in
      Printf.printf "%-22s %8d %8d %12d %8d %10d\n" p.label
        rep.Brisc.dict_entries rep.Brisc.base_entries
        rep.Brisc.candidates_tested rep.Brisc.passes
        rep.Brisc.max_markov_successors)
    (Lazy.force points);
  print_endline
    "paper: lcc dictionary 981 entries; gcc 1232 entries, 93,211 candidates;";
  print_endline "       every Markov context had at most 244 successors"

(* ---- delivery scenarios (introduction + §4.5 prose) ---- *)

let scenario_delivery () =
  hr "Scenario — delivery time by link speed (paper intro, §4.5)";
  let p = List.nth (Lazy.force points) 1 in
  let _img, rep = brisc_of p in
  let sizes =
    {
      Scenario.Delivery.native_bytes = Native.Mach.program_size p.np;
      gzip_bytes = String.length (Zip.Deflate.compress p.x86_img);
      wire_bytes = String.length (Wire.compress p.ir);
      brisc_bytes = rep.Brisc.brisc_total;
    }
  in
  let input = p.entry.Corpus.Programs.input in
  let sim = Native.Sim.run ~input p.np in
  let run_cycles = sim.Native.Sim.cycles * 2000 (* model a longer session *) in
  let links =
    [ ("28.8k modem", Scenario.Delivery.modem_bps);
      ("ISDN", Scenario.Delivery.isdn_bps);
      ("T1", Scenario.Delivery.t1_bps);
      ("10M LAN", Scenario.Delivery.lan_bps);
      ("100M LAN", Scenario.Delivery.fast_lan_bps) ]
  in
  (* shipping raw or gzipped native code is only possible for a
     homogeneous client population; the paper's mobile-code setting
     compares the portable representations (wire vs BRISC) *)
  Printf.printf "%-12s %12s %12s %12s %12s %12s %16s\n" "link" "native"
    "gzip+nat" "wire+JIT" "BRISC+JIT" "BRISC int" "best portable";
  List.iter
    (fun (name, bps) ->
      let t r =
        (Scenario.Delivery.total_time sizes ~run_cycles ~link_bps:bps r)
          .Scenario.Delivery.total_s
      in
      let portable =
        [ Scenario.Delivery.Wire_format; Scenario.Delivery.Brisc_jit;
          Scenario.Delivery.Brisc_interp ]
      in
      let best =
        List.fold_left
          (fun acc r -> if t r < t acc then r else acc)
          (List.hd portable) (List.tl portable)
      in
      Printf.printf "%-12s %11.2fs %11.2fs %11.2fs %11.2fs %11.2fs %16s\n" name
        (t Scenario.Delivery.Raw_native)
        (t Scenario.Delivery.Gzipped_native)
        (t Scenario.Delivery.Wire_format)
        (t Scenario.Delivery.Brisc_jit)
        (t Scenario.Delivery.Brisc_interp)
        (Scenario.Delivery.repr_name best))
    links;
  print_endline
    "paper: the wire format minimizes latency over a modem; BRISC wins on a LAN"

let scenario_paging () =
  hr "Scenario — paging and working set (paper intro; §4 'cuts working set')";
  let e =
    Corpus.Gen.generate { Corpus.Gen.functions = 150; seed = 31L; bias16 = false }
  in
  let vp = Vm.Codegen.gen_program (Cc.Lower.compile e.Corpus.Programs.source) in
  (* a long-running session revisits its code repeatedly; repeat the
     one-shot trace to model re-references under memory pressure *)
  let once = Scenario.Paging.trace_of_program vp in
  let trace = List.concat (List.init 20 (fun _ -> once)) in
  let page_bytes = 1024 in
  let native_layout =
    Scenario.Paging.layout_of_sizes ~page_bytes
      (Scenario.Paging.func_sizes_native vp)
  in
  let img = Brisc.compress vp in
  let brisc_layout =
    Scenario.Paging.layout_of_sizes ~page_bytes
      (Scenario.Paging.func_sizes_brisc img)
  in
  Printf.printf "code image: native %d pages, BRISC %d pages (%.0f%% smaller)\n"
    native_layout.Scenario.Paging.pages brisc_layout.Scenario.Paging.pages
    (100.0
    *. (1.0
       -. float_of_int brisc_layout.Scenario.Paging.pages
          /. float_of_int native_layout.Scenario.Paging.pages));
  Printf.printf "%-10s %14s %14s %14s %14s\n" "budget" "native faults"
    "brisc faults" "native time" "brisc time";
  List.iter
    (fun budget ->
      let cfg = Scenario.Paging.default_config ~resident_pages:budget in
      (* interpreting compressed pages costs decompression per fault *)
      let cfg_b = { cfg with Scenario.Paging.decompress_us_per_page = 100.0 } in
      let rn = Scenario.Paging.simulate cfg native_layout trace in
      let rb = Scenario.Paging.simulate cfg_b brisc_layout trace in
      Printf.printf "%-10d %14d %14d %13.3fs %13.3fs\n" budget
        rn.Scenario.Paging.faults rb.Scenario.Paging.faults
        rn.Scenario.Paging.fault_time_s rb.Scenario.Paging.fault_time_s)
    [ 2; 4; 8; 16; 32 ];
  print_endline
    "paper: compressed pages can cut total time when memory is the bottleneck"

let scenario_icache () =
  hr "Scenario — instruction cache (paper intro: 'even for cache misses')";
  let e = Corpus.Programs.queens in
  let vp = Vm.Codegen.gen_program (Cc.Lower.compile e.Corpus.Programs.source) in
  let np = Native.Compile.compile_program vp in
  let img, _ = Brisc.measure vp in
  let nt = Scenario.Icache.native_fetch_trace np () in
  let bt = Scenario.Icache.brisc_fetch_trace img () in
  Printf.printf "%-14s %16s %16s\n" "cache (bytes)" "native misses" "BRISC misses";
  List.iter
    (fun lines ->
      let cfg = Scenario.Icache.default_config ~lines in
      let rn = Scenario.Icache.simulate cfg nt in
      let rb = Scenario.Icache.simulate cfg bt in
      Printf.printf "%-14d %16d %16d\n" (lines * cfg.Scenario.Icache.line_bytes)
        rn.Scenario.Icache.misses rb.Scenario.Icache.misses)
    [ 2; 4; 8; 16; 32 ];
  print_endline
    "the denser image stops missing at a smaller cache; decode overhead is";
  print_endline "the price (table 2's interp column)"

(* ---- ablations (DESIGN.md §5) ---- *)

let ablation_wire_stages () =
  hr "Ablation — wire pipeline stages (MTF, stream splitting)";
  let p = List.nth (Lazy.force points) 1 in
  let variants =
    [ ("full pipeline", Wire.compress p.ir);
      ("without MTF", Wire.compress ~use_mtf:false p.ir);
      ("single literal stream", Wire.compress ~split_streams:false p.ir);
      ("neither", Wire.compress ~use_mtf:false ~split_streams:false p.ir) ]
  in
  List.iter
    (fun (name, z) -> Printf.printf "%-26s %8d bytes\n" name (String.length z))
    variants;
  print_endline
    "(stream separation is the paper's insight and must win; MTF is near-";
  print_endline
    " neutral here because the final deflate stage also captures locality)";
  hr "Ablation — final entropy stage (paper §2 design space)";
  List.iter
    (fun (name, stage) ->
      Printf.printf "%-26s %8d bytes\n" name
        (String.length (Wire.compress ~final_stage:stage p.ir)))
    [ ("deflate (paper's gzip)", Wire.Deflate); ("arith order-0", Wire.Arith 0);
      ("arith order-1", Wire.Arith 1); ("arith order-2", Wire.Arith 2) ];
  print_endline
    "paper: arithmetic codes 'can compress better by coding for sequences";
  print_endline
    " longer than individual symbols, but complicate direct interpretation'"

let ablation_benefit () =
  hr "Ablation — benefit metric B = P - W vs abundant-memory B = P";
  let p = List.nth (Lazy.force points) 1 in
  List.iter
    (fun (name, ignore_w) ->
      let _, rep = Brisc.measure ~ignore_w p.vp in
      Printf.printf "%-18s entries %5d  code %7d B  total %7d B\n" name
        rep.Brisc.dict_entries rep.Brisc.brisc_code rep.Brisc.brisc_total)
    [ ("B = P - W", false); ("B = P", true) ];
  print_endline "paper: 'in abundant memory situations we can set B equal to P'"

let ablation_input_quality () =
  hr "Ablation — input code quality (peephole-optimized vs raw codegen)";
  (* The paper's BRISC inputs were 'highly optimized using a commercial
     compiler back end'; cleaner input shifts both the native baseline
     and what specialization can find. *)
  let p = List.nth (Lazy.force points) 1 in
  List.iter
    (fun (name, vp) ->
      let np = Native.Compile.compile_program vp in
      let native = Native.Mach.program_size np in
      let _, rep = Brisc.measure vp in
      Printf.printf "%-22s vm %6d B  native %6d B  BRISC %6d B  (%.2f of native)\n"
        name rep.Brisc.original_bytes native rep.Brisc.brisc_total
        (float_of_int rep.Brisc.brisc_total /. float_of_int native))
    [ ("raw codegen", p.vp); ("peephole-optimized", Vm.Peephole.optimize p.vp) ]

let ablation_k () =
  hr "Ablation — K (candidates accepted per pass)";
  let p = List.nth (Lazy.force points) 1 in
  List.iter
    (fun k ->
      let (_, rep), secs = time (fun () -> Brisc.measure ~k p.vp) in
      Printf.printf "K=%-4d entries %5d  passes %3d  total %7d B  (%.1fs)\n" k
        rep.Brisc.dict_entries rep.Brisc.passes rep.Brisc.brisc_total secs)
    [ 5; 20; 60 ];
  print_endline "paper uses K=20; the knob trades passes for selectivity"

(* ---- the code-delivery server (lib/server) ---- *)

let workload_config = { Server.Workload.default_config with requests = 240 }

let server_catalog engine =
  let generated =
    if quick then [ { Corpus.Gen.functions = 12; seed = 1017L; bias16 = false } ]
    else Server.Workload.default_generated
  in
  Server.Workload.build_catalog ~generated engine

let compress_time rep =
  List.fold_left
    (fun a rr -> a +. rr.Server.Stats.compress_total_s)
    0.0 rep.Server.Stats.by_repr

(* run the seeded workload against one engine; compression time is the
   workload phase only (publish-time compression is paid identically by
   every server and would drown the cache's effect) *)
let server_run engine =
  let catalog = server_catalog engine in
  let publish_compress_s = compress_time (Server.report engine) in
  let summary, wall =
    time (fun () -> Server.Workload.run engine ~config:workload_config catalog)
  in
  let serve_compress_s =
    compress_time summary.Server.Workload.report -. publish_compress_s
  in
  (catalog, summary, wall, serve_compress_s)

let scenario_server () =
  hr "Scenario — code-delivery server (cache + adaptive selection)";
  (* adaptive server with a byte-budgeted cache vs a zero-byte cache
     that forces every request to compress from scratch *)
  let engine = Server.create ~budget_bytes:(256 * 1024) () in
  let catalog, summary, adaptive_wall, adaptive_compress = server_run engine in
  let r = summary.Server.Workload.report in
  let engine0 = Server.create ~budget_bytes:0 () in
  let _, summary0, recompress_wall, recompress_compress = server_run engine0 in
  let r0 = summary0.Server.Workload.report in
  Printf.printf "%d requests over %d programs, 4 client profiles\n"
    summary.Server.Workload.requests (List.length catalog);
  Printf.printf "%-22s %12s %16s %12s\n" "server" "hit rate"
    "serve compress" "wall clock";
  Printf.printf "%-22s %11.1f%% %15.3fs %11.3fs\n" "cached (256 KB)"
    (100.0 *. r.Server.Stats.cache_hit_rate)
    adaptive_compress adaptive_wall;
  Printf.printf "%-22s %11.1f%% %15.3fs %11.3fs\n" "always-recompress"
    (100.0 *. r0.Server.Stats.cache_hit_rate)
    recompress_compress recompress_wall;
  Printf.printf
    "\nadaptive vs one-size-fits-all, same %d fetches (modelled client time):\n"
    summary.Server.Workload.fetches;
  Printf.printf "  %-18s %12s %14s\n" "policy" "total time" "bytes shipped";
  Printf.printf "  %-18s %11.1fs %14s\n" "adaptive"
    summary.Server.Workload.adaptive_s
    (Support.Util.human_bytes summary.Server.Workload.adaptive_fetch_bytes);
  List.iter
    (fun b ->
      Printf.printf "  %-18s %11.1fs %14s\n"
        ("all " ^ Scenario.Delivery.repr_name b.Server.Workload.fixed)
        b.Server.Workload.modelled_s
        (Support.Util.human_bytes b.Server.Workload.wire_bytes))
    summary.Server.Workload.baselines;
  Printf.printf
    "\nchunked sessions: %d chunks streamed, %s vs %s as whole wire images\n"
    r.Server.Stats.chunks_served
    (Support.Util.human_bytes r.Server.Stats.session_bytes)
    (Support.Util.human_bytes r.Server.Stats.session_wire_equiv);
  print_endline
    "the cache amortizes compression across requests; per-client selection";
  print_endline
    "never loses to a fixed representation and ships it to clients a";
  print_endline "one-size-fits-all server couldn't serve at all (§4.5)"

(* ---- --json: machine-readable sizes + rates ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ---- per-stage codec matrix (--codecs-json, "codecs" key of --json) ---- *)

let stage_json (s : Codec.stage) =
  (* throughput is input bytes over wall time; sub-resolution timings
     report 0 rather than a nonsense spike *)
  let mb_s =
    if s.Codec.wall_s > 1e-9 then
      float_of_int s.Codec.bytes_in /. s.Codec.wall_s /. 1e6
    else 0.0
  in
  Printf.sprintf
    "{\"stage\": \"%s\", \"bytes_in\": %d, \"bytes_out\": %d, \
     \"wall_s\": %.6f, \"throughput_mb_s\": %.2f}"
    (json_escape s.Codec.stage) s.Codec.bytes_in s.Codec.bytes_out
    s.Codec.wall_s mb_s

(* per-stage wall times jitter on a shared machine; keep the best of
   three runs stage-wise (stage lists are structural, so they zip) so
   the tracked JSON — and the perf gate reading it — sees the kernel,
   not the scheduler *)
let best_of ~runs f =
  let min_stages a b =
    List.map2
      (fun (x : Codec.stage) (y : Codec.stage) ->
        if y.Codec.wall_s < x.Codec.wall_s then y else x)
      a b
  in
  (* start every run from a settled heap: earlier codecs in the same
     process leave major-GC debt behind, and a collection slice landing
     inside a timed stage shows up as a phantom 5-10x regression that
     min-of-runs cannot dodge (all runs in the indebted process pay it) *)
  let run () = Gc.full_major (); f () in
  let first = run () in
  let rec go best n = if n = 0 then best else go (min_stages best (run ())) (n - 1) in
  go first (runs - 1)

(* every registered codec encoded (and its output decoded) from one
   shared source, with the traces both directions report. Contexted
   codecs get the context they declare: the committed shared
   dictionary, or — for the delta update channel — the point's own
   printed IR as the held base (the all-functions-match patch, the
   dominant case in the update-storm scenario). *)
let codec_rows p =
  let src = Codec.Source.of_ir ~vm:p.vp ~native:p.x86_img p.ir in
  List.map
    (fun (e : Codec.entry) ->
      let c = e.Codec.codec in
      let ctx =
        match e.Codec.needs with
        | `None -> None
        | `Shared_dict _ -> Some (Codec.Context.builtin ())
        | `Base _ ->
          Some
            (Codec.Context.base
               ~ir_text:(Ir.Printer.program_to_string p.ir))
      in
      let bytes, _ = Codec.encode ?ctx c src in
      let enc = best_of ~runs:5 (fun () -> snd (Codec.encode ?ctx c src)) in
      let dec =
        best_of ~runs:5 (fun () ->
            match Codec.decode ?ctx c bytes with
            | Ok (_, tr) -> tr
            | Error _ -> [])
      in
      (c, bytes, enc, dec))
    (Codec.all ())

let codec_point_json ?(indent = "    ") p =
  let rows = codec_rows p in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s{\"label\": \"%s\", \"codecs\": [\n" indent (json_escape p.label);
  List.iteri
    (fun i (c, bytes, enc, dec) ->
      (* the ratio/throughput frontier the perf gate holds: bytes out
         over the pipeline's input footprint, and end-to-end encode
         rate over the best-of-runs stage walls *)
      let in0 =
        match enc with s :: _ -> s.Codec.bytes_in | [] -> String.length bytes
      in
      let enc_wall = List.fold_left (fun a s -> a +. s.Codec.wall_s) 0.0 enc in
      let ratio =
        if in0 > 0 then float_of_int (String.length bytes) /. float_of_int in0
        else 1.0
      in
      let enc_mb_s =
        if enc_wall > 1e-9 then float_of_int in0 /. enc_wall /. 1e6 else 0.0
      in
      add
        "%s  {\"name\": \"%s\", \"tag\": \"%s\", \"bytes\": %d, \
         \"ratio\": %.4f, \"encode_mb_s\": %.2f,\n\
         %s   \"encode_stages\": [%s],\n\
         %s   \"decode_stages\": [%s]}%s\n"
        indent
        (json_escape (Codec.name c))
        (json_escape (Codec.tag c))
        (String.length bytes) ratio enc_mb_s indent
        (String.concat ", " (List.map stage_json enc))
        indent
        (String.concat ", " (List.map stage_json dec))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "%s]}" indent;
  Buffer.contents buf

let codecs_json () =
  let pts =
    [ List.nth (Lazy.force points) 0; List.nth (Lazy.force points) 1 ]
  in
  Printf.printf "{\n  \"schema\": \"codecomp-codecs-bench-v1\",\n  \"quick\": %b,\n"
    quick;
  print_string "  \"points\": [\n";
  List.iteri
    (fun i p ->
      print_string (codec_point_json p);
      print_string (if i = List.length pts - 1 then "\n" else ",\n"))
    pts;
  print_string "  ]\n}\n"

(* ---- demand-paged execution sweep (--paging-json) ----

   Corpus points with functions > 40: the generated driver samples 40
   functions, so these images carry cold functions interleaved with
   live ones — the layout a profile-guided reorder exists to fix (and
   the shape the paper ascribes to real programs: most code is rarely
   executed). Per point, the same chunked image runs under the pager in
   source order and in affinity order, across resident budgets; the
   session repeats with a warm code cache so capacity misses (not just
   compulsory ones) are measured. Ratios ride along: the chunked image
   is order-invariant by construction, wire/BRISC/icache deltas are
   measured. All numbers are modelled cycles and byte counts —
   deterministic, which is what lets perf_gate --paging pin ceilings. *)
let paging_json () =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let repeat = 8 in
  let budgets = [ 50; 25; 12 ] in
  let cfg_of budget_bytes = Scenario.Paged.config ~budget_bytes () in
  add "{\n  \"schema\": \"codecomp-paging-bench-v1\",\n";
  add
    "  \"page_bytes\": 1024, \"fault_cycles\": 2000, \
     \"decompress_cycles_per_byte\": 40, \"repeat\": %d,\n"
    repeat;
  add "  \"points\": [\n";
  let pts = [ ("gen-80", 80, 101L); ("gen-120", 120, 0x1CCL); ("gen-300", 300, 9L) ] in
  List.iteri
    (fun pi (label, functions, seed) ->
      let e =
        Corpus.Gen.generate { Corpus.Gen.functions; seed; bias16 = false }
      in
      let ir = Cc.Lower.compile e.Corpus.Programs.source in
      let vp = Vm.Codegen.gen_program ir in
      let input = e.Corpus.Programs.input in
      let base = Vm.Interp.run ~input vp in
      let prof = Vm.Profile.collect ~input vp in
      let hot = Vm.Layout.affinity_heat ~trace:(Vm.Profile.call_trace prof) in
      let bhot = Vm.Profile.block_hot prof in
      let ir_hot = Vm.Layout.reorder_ir ~hot ir in
      let vp_hot = Vm.Layout.hot_layout ~hot ~bhot vp in
      let img = Wire.Chunked.compress ir in
      let img_hot = Wire.Chunked.compress ir_hot in
      let total = Scenario.Paged.vm_image_bytes img in
      let bimg = Brisc.compress vp in
      let bimg_hot = Brisc.compress vp_hot in
      let icfg = Scenario.Icache.default_config ~lines:64 in
      let misses im =
        (Scenario.Icache.simulate icfg
           (Scenario.Icache.brisc_fetch_trace im ~input ()))
          .Scenario.Icache.misses
      in
      add "    {\"label\": \"%s\", \"functions\": %d,\n" (json_escape label)
        functions;
      add "     \"image_decompressed_bytes\": %d,\n" total;
      add "     \"chunked_bytes_src\": %d, \"chunked_bytes_hot\": %d,\n"
        (Wire.Chunked.size img) (Wire.Chunked.size img_hot);
      add "     \"wire_bytes_src\": %d, \"wire_bytes_hot\": %d,\n"
        (String.length (Wire.compress ir))
        (String.length (Wire.compress ir_hot));
      add "     \"brisc_bytes_src\": %d, \"brisc_bytes_hot\": %d,\n"
        (String.length (Brisc.to_bytes bimg))
        (String.length (Brisc.to_bytes bimg_hot));
      add "     \"icache_misses_src\": %d, \"icache_misses_hot\": %d,\n"
        (misses bimg) (misses bimg_hot);
      let run im budget =
        match Scenario.Paged.run_vm ~cfg:(cfg_of budget) ~repeat ~input im with
        | Ok r ->
          if r.Scenario.Paged.res.Vm.Interp.output <> base.Vm.Interp.output
          then begin
            Printf.eprintf
              "paging bench: %s: paged output diverged from resident run\n"
              label;
            exit 1
          end;
          r
        | Error err ->
          Printf.eprintf "paging bench: %s: %s\n" label
            (Scenario.Paged.error_to_string err);
          exit 1
      in
      let tf_src = ref 0 and tf_hot = ref 0 in
      add "     \"budgets\": [\n";
      List.iteri
        (fun bi pct ->
          let budget = total * pct / 100 in
          let rs = run img budget and rh = run img_hot budget in
          let ss = rs.Scenario.Paged.stats and sh = rh.Scenario.Paged.stats in
          tf_src := !tf_src + ss.Vm.Pager.faults;
          tf_hot := !tf_hot + sh.Vm.Pager.faults;
          add
            "       {\"budget_pct\": %d, \"budget_bytes\": %d, \
             \"faults_src\": %d, \"faults_hot\": %d, \"stall_src\": %d, \
             \"stall_hot\": %d, \"overhead_src\": %.4f, \"overhead_hot\": \
             %.4f, \"hwm_src\": %d, \"hwm_hot\": %d}%s\n"
            pct budget ss.Vm.Pager.faults sh.Vm.Pager.faults
            ss.Vm.Pager.stall_cycles sh.Vm.Pager.stall_cycles
            rs.Scenario.Paged.overhead rh.Scenario.Paged.overhead
            ss.Vm.Pager.resident_hwm sh.Vm.Pager.resident_hwm
            (if bi = List.length budgets - 1 then "" else ","))
        budgets;
      add "     ],\n";
      (* BRISC pages itself in place (no decompression stall); report
         its fault profile at a quarter of its own compressed footprint *)
      let bbytes =
        Array.fold_left
          (fun a (f : Brisc.Emit.ifunc) -> a + String.length f.Brisc.Emit.code)
          0 bimg.Brisc.Emit.ifuncs
      in
      (match
         Scenario.Paged.run_brisc ~budget_bytes:(max 1 (bbytes / 4)) ~input
           bimg
       with
      | Ok br ->
        add
          "     \"brisc_paged_faults\": %d, \"brisc_paged_overhead\": %.4f,\n"
          br.Scenario.Paged.bstats.Vm.Pager.faults
          br.Scenario.Paged.boverhead
      | Error err ->
        Printf.eprintf "paging bench: %s (brisc): %s\n" label
          (Scenario.Paged.error_to_string err);
        exit 1);
      add "     \"faults_total_src\": %d, \"faults_total_hot\": %d}%s\n"
        !tf_src !tf_hot
        (if pi = List.length pts - 1 then "" else ","))
    pts;
  add "  ]\n}\n";
  print_string (Buffer.contents b)

let json_report () =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n  \"schema\": \"codecomp-bench-v1\",\n";
  add "  \"quick\": %b,\n" quick;
  (* per-point sizes *)
  add "  \"points\": [\n";
  let pts = Lazy.force points @ [ Lazy.force word97_point ] in
  List.iteri
    (fun i p ->
      let _, rep = brisc_of p in
      let native = Native.Mach.program_size p.np in
      let sparc = String.length p.sparc_img in
      let gz_sparc = String.length (Zip.Deflate.compress p.sparc_img) in
      let gz_x86 = String.length (Zip.Deflate.compress p.x86_img) in
      let wire = String.length (Wire.compress p.ir) in
      add
        "    {\"label\": \"%s\", \"native_bytes\": %d, \"sparc_bytes\": %d, \
         \"gzip_sparc_bytes\": %d, \"gzip_native_bytes\": %d, \
         \"wire_bytes\": %d, \"brisc_bytes\": %d, \"brisc_code_bytes\": %d, \
         \"wire_vs_sparc\": %.4f, \"brisc_vs_native\": %.4f}%s\n"
        (json_escape p.label) native sparc gz_sparc gz_x86 wire
        rep.Brisc.brisc_total rep.Brisc.brisc_code
        (float_of_int sparc /. float_of_int wire)
        (float_of_int rep.Brisc.brisc_total /. float_of_int native)
        (if i = List.length pts - 1 then "" else ","))
    pts;
  add "  ],\n";
  (* measured rates, as in Table 2 *)
  let strlib = make_point "strlib" Corpus.Programs.strlib in
  let img = Brisc.compress strlib.vp in
  let (_, produced), jit_s = time (fun () -> Brisc.Jit.compile_with_stats img) in
  let wire_z = Wire.compress strlib.ir in
  let _, dec_s = time (fun () -> ignore (Wire.decompress wire_z)) in
  let native_mb =
    float_of_int (Native.Mach.program_size strlib.np) /. 1048576.0
  in
  add "  \"rates\": {\"jit_mbps_measured\": %.3f, \
       \"wire_decompress_mbps_measured\": %.3f, \"default_decompress_mbps\": \
       %.1f, \"default_jit_mbps\": %.1f, \"default_interp_slowdown\": %.1f},\n"
    (float_of_int produced /. jit_s /. 1048576.0)
    (native_mb /. dec_s)
    Scenario.Delivery.default_rates.Scenario.Delivery.decompress_mbps
    Scenario.Delivery.default_rates.Scenario.Delivery.jit_mbps
    Scenario.Delivery.default_rates.Scenario.Delivery.interp_slowdown;
  (* per-stage matrix for every registered codec (wc point) *)
  add "  \"codecs\":\n%s,\n" (codec_point_json ~indent:"  " (List.nth pts 0));
  (* server workload summary *)
  let engine = Server.create ~budget_bytes:(256 * 1024) () in
  let catalog = server_catalog engine in
  let summary = Server.Workload.run engine ~config:workload_config catalog in
  let r = summary.Server.Workload.report in
  add
    "  \"server\": {\"requests\": %d, \"cache_hit_rate\": %.4f, \
     \"evictions\": %d, \"bytes_on_wire\": %d, \"adaptive_modelled_s\": %.2f, \
     \"session_bytes\": %d, \"session_wire_equiv_bytes\": %d, \
     \"distinct_reprs\": [%s]}\n"
    r.Server.Stats.requests r.Server.Stats.cache_hit_rate
    r.Server.Stats.cache.Server.Cache.evictions
    r.Server.Stats.total_bytes_served summary.Server.Workload.adaptive_s
    r.Server.Stats.session_bytes r.Server.Stats.session_wire_equiv
    (String.concat ", "
       (List.map
          (fun s -> "\"" ^ json_escape s ^ "\"")
          summary.Server.Workload.distinct_reprs));
  add "}\n";
  print_string (Buffer.contents b)

(* ---- --compressor-json: Dict.build timing across modes ---- *)

let compressor_json () =
  let p = List.nth (Lazy.force points) 2 (* gcc-like *) in
  let domains = match domains_flag with Some n -> n | None -> 4 in
  let measure_mode mode f =
    (* drop the previous mode's garbage first: retained dead heap inflates
       every GC slice taken during the timed build (brutally so for the
       multi-domain mode, where minor collections barrier all domains) *)
    Gc.compact ();
    let (img, rep), wall = time f in
    (mode, Brisc.to_bytes img, rep, wall)
  in
  let full =
    measure_mode "full-scan" (fun () -> Brisc.measure ~full_scan:true p.vp)
  in
  let inc = measure_mode "incremental" (fun () -> Brisc.measure p.vp) in
  let par =
    let pool = Support.Pool.create ~domains in
    let r =
      measure_mode
        (Printf.sprintf "parallel-%d" domains)
        (fun () -> Brisc.measure ~pool p.vp)
    in
    Support.Pool.shutdown pool;
    r
  in
  let modes = [ full; inc; par ] in
  let _, baseline_bytes, _, full_wall = full in
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n  \"schema\": \"codecomp-compressor-bench-v1\",\n";
  add "  \"quick\": %b,\n  \"label\": \"%s\",\n  \"domains\": %d,\n" quick
    (json_escape p.label) domains;
  add "  \"modes\": [\n";
  List.iteri
    (fun i (mode, bytes, rep, wall) ->
      let bt = rep.Brisc.build in
      add
        "    {\"mode\": \"%s\", \"wall_s\": %.4f, \"scan_s\": %.4f, \
         \"rank_s\": %.4f, \"rewrite_s\": %.4f, \"passes\": %d, \
         \"items_scanned\": %d, \"candidates_tested\": %d, \
         \"candidates_per_s\": %.1f, \"domains\": %d, \"dict_entries\": %d, \
         \"brisc_bytes\": %d, \"identical_to_full_scan\": %b, \
         \"speedup_vs_full_scan\": %.3f,\n     \"passes_detail\": [%s]}%s\n"
        mode wall bt.Brisc.scan_s bt.Brisc.rank_s bt.Brisc.rewrite_s
        rep.Brisc.passes bt.Brisc.items_scanned rep.Brisc.candidates_tested
        (float_of_int rep.Brisc.candidates_tested /. wall)
        bt.Brisc.domains rep.Brisc.dict_entries (String.length bytes)
        (bytes = baseline_bytes)
        (full_wall /. wall)
        (String.concat ", "
           (List.map
              (fun (s : Brisc.Dict.pass_stat) ->
                Printf.sprintf
                  "{\"pass\": %d, \"live\": %d, \"scanned\": %d, \
                   \"cand_table\": %d, \"heap\": %d, \"selected\": %d, \
                   \"scan_s\": %.4f, \"rank_s\": %.4f, \"rewrite_s\": %.4f}"
                  s.Brisc.Dict.ps_pass s.Brisc.Dict.ps_live_items
                  s.Brisc.Dict.ps_items_scanned s.Brisc.Dict.ps_candidate_table
                  s.Brisc.Dict.ps_heap_size s.Brisc.Dict.ps_selected
                  s.Brisc.Dict.ps_scan_s s.Brisc.Dict.ps_rank_s
                  s.Brisc.Dict.ps_rewrite_s)
              bt.Brisc.pass_stats))
        (if i = List.length modes - 1 then "" else ","))
    modes;
  add "  ]\n}\n";
  print_string (Buffer.contents b)

(* ---- bechamel micro-benchmarks ---- *)

let bechamel () =
  hr "Bechamel micro-benchmarks (host wall-clock)";
  let open Bechamel in
  let p = List.nth (Lazy.force points) 0 (* wc: small, fast iterations *) in
  let strlib = make_point "strlib" Corpus.Programs.strlib in
  let img = Brisc.compress strlib.vp in
  let wire_z = Wire.compress strlib.ir in
  let tests =
    [
      Test.make ~name:"wire-compress(strlib)"
        (Staged.stage (fun () -> ignore (Wire.compress strlib.ir)));
      Test.make ~name:"wire-decompress(strlib)"
        (Staged.stage (fun () -> ignore (Wire.decompress wire_z)));
      Test.make ~name:"brisc-compress(wc)"
        (Staged.stage (fun () -> ignore (Brisc.compress p.vp)));
      Test.make ~name:"brisc-jit(strlib)"
        (Staged.stage (fun () -> ignore (Brisc.Jit.compile img)));
      Test.make ~name:"brisc-interp(strlib)"
        (Staged.stage (fun () -> ignore (Brisc.Interp.run img)));
      Test.make ~name:"vm-interp(strlib)"
        (Staged.stage (fun () -> ignore (Vm.Interp.run strlib.vp)));
      Test.make ~name:"native-sim(strlib)"
        (Staged.stage (fun () -> ignore (Native.Sim.run strlib.np)));
      Test.make ~name:"deflate(sparc-image)"
        (Staged.stage (fun () -> ignore (Zip.Deflate.compress strlib.sparc_img)));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name result ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              (Toolkit.Instance.monotonic_clock :> Measure.witness)
              result
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        results)
    tests

let () =
  if paging_json_mode then begin
    paging_json ();
    exit 0
  end;
  if codecs_json_mode then begin
    codecs_json ();
    exit 0
  end;
  if compressor_json_mode then begin
    compressor_json ();
    exit 0
  end;
  if json_mode then begin
    json_report ();
    exit 0
  end;
  let total0 = Unix.gettimeofday () in
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  dict_stats ();
  scenario_delivery ();
  scenario_paging ();
  scenario_icache ();
  scenario_server ();
  ablation_wire_stages ();
  ablation_benefit ();
  ablation_input_quality ();
  ablation_k ();
  if not no_bechamel then bechamel ();
  Printf.printf "\ntotal bench time: %.1fs%s\n"
    (Unix.gettimeofday () -. total0)
    (if quick then " (--quick)" else "")
